#include "erasure/gf256.h"

#include <gtest/gtest.h>

namespace hyrd::erasure {
namespace {

const GF256& gf() { return GF256::instance(); }

TEST(GF256, AddIsXor) {
  EXPECT_EQ(gf().add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(gf().sub(0x57, 0x83), 0x57 ^ 0x83);
}

TEST(GF256, MulByZeroAndOne) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf().mul(static_cast<std::uint8_t>(a), 0), 0);
    EXPECT_EQ(gf().mul(0, static_cast<std::uint8_t>(a)), 0);
    EXPECT_EQ(gf().mul(static_cast<std::uint8_t>(a), 1), a);
  }
}

TEST(GF256, MulCommutative) {
  for (int a = 1; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      EXPECT_EQ(gf().mul(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)),
                gf().mul(static_cast<std::uint8_t>(b),
                         static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(GF256, MulAssociative) {
  for (int a = 1; a < 256; a += 31) {
    for (int b = 1; b < 256; b += 37) {
      for (int c = 1; c < 256; c += 41) {
        const auto ua = static_cast<std::uint8_t>(a);
        const auto ub = static_cast<std::uint8_t>(b);
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(gf().mul(gf().mul(ua, ub), uc),
                  gf().mul(ua, gf().mul(ub, uc)));
      }
    }
  }
}

TEST(GF256, DistributiveOverAdd) {
  for (int a = 1; a < 256; a += 13) {
    for (int b = 0; b < 256; b += 17) {
      for (int c = 0; c < 256; c += 19) {
        const auto ua = static_cast<std::uint8_t>(a);
        const auto ub = static_cast<std::uint8_t>(b);
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(gf().mul(ua, gf().add(ub, uc)),
                  gf().add(gf().mul(ua, ub), gf().mul(ua, uc)));
      }
    }
  }
}

TEST(GF256, InverseProperty) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf().mul(ua, gf().inv(ua)), 1) << "a=" << a;
  }
}

TEST(GF256, DivUndoesMul) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 9) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(gf().div(gf().mul(ua, ub), ub), ua);
    }
  }
}

TEST(GF256, PowMatchesRepeatedMul) {
  for (int a = 2; a < 256; a += 51) {
    const auto ua = static_cast<std::uint8_t>(a);
    std::uint8_t acc = 1;
    for (unsigned n = 0; n < 10; ++n) {
      EXPECT_EQ(gf().pow(ua, n), acc);
      acc = gf().mul(acc, ua);
    }
  }
}

TEST(GF256, PowEdgeCases) {
  EXPECT_EQ(gf().pow(0, 0), 1);  // 0^0 convention
  EXPECT_EQ(gf().pow(0, 5), 0);
  EXPECT_EQ(gf().pow(1, 1000), 1);
}

TEST(GF256, MulAddRegionMatchesScalar) {
  common::Bytes src = common::patterned(257, 1);
  common::Bytes dst = common::patterned(257, 2);
  common::Bytes expected = dst;
  const std::uint8_t c = 0x8E;
  for (std::size_t i = 0; i < src.size(); ++i) {
    expected[i] ^= gf().mul(c, src[i]);
  }
  gf().mul_add_region(dst, src, c);
  EXPECT_EQ(dst, expected);
}

TEST(GF256, MulAddRegionZeroCoefficientIsNoop) {
  common::Bytes src = common::patterned(64, 1);
  common::Bytes dst = common::patterned(64, 2);
  const common::Bytes before = dst;
  gf().mul_add_region(dst, src, 0);
  EXPECT_EQ(dst, before);
}

TEST(GF256, MulAddRegionOneCoefficientIsXor) {
  common::Bytes src = common::patterned(64, 1);
  common::Bytes dst = common::patterned(64, 2);
  common::Bytes expected = dst;
  for (std::size_t i = 0; i < 64; ++i) expected[i] ^= src[i];
  gf().mul_add_region(dst, src, 1);
  EXPECT_EQ(dst, expected);
}

TEST(GF256, MulRegionMatchesScalar) {
  common::Bytes src = common::patterned(100, 3);
  common::Bytes dst(100, 0);
  gf().mul_region(dst, src, 0x1D);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst[i], gf().mul(0x1D, src[i]));
  }
}

}  // namespace
}  // namespace hyrd::erasure
