#include "erasure/reed_solomon.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyrd::erasure {
namespace {

std::vector<common::Bytes> make_shards(std::size_t k, std::size_t shard_size,
                                       std::uint64_t seed) {
  std::vector<common::Bytes> shards;
  shards.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    shards.push_back(common::patterned(shard_size, seed + i));
  }
  return shards;
}

TEST(ReedSolomon, EncodeRejectsWrongShardCount) {
  ReedSolomon rs(3, 1);
  auto shards = make_shards(2, 16, 0);
  EXPECT_FALSE(rs.encode(shards).is_ok());
}

TEST(ReedSolomon, EncodeRejectsUnequalShardSizes) {
  ReedSolomon rs(2, 1);
  std::vector<common::Bytes> shards = {common::patterned(16, 0),
                                       common::patterned(17, 1)};
  EXPECT_FALSE(rs.encode(shards).is_ok());
}

TEST(ReedSolomon, VerifyAcceptsFreshEncode) {
  ReedSolomon rs(4, 2);
  auto data = make_shards(4, 128, 5);
  auto parity = rs.encode(data);
  ASSERT_TRUE(parity.is_ok());
  auto all = data;
  for (auto& p : parity.value()) all.push_back(p);
  EXPECT_TRUE(rs.verify(all));
}

TEST(ReedSolomon, VerifyRejectsCorruption) {
  ReedSolomon rs(4, 2);
  auto data = make_shards(4, 128, 5);
  auto parity = rs.encode(data);
  ASSERT_TRUE(parity.is_ok());
  auto all = data;
  for (auto& p : parity.value()) all.push_back(p);
  all[2][64] ^= 0xFF;
  EXPECT_FALSE(rs.verify(all));
}

TEST(ReedSolomon, ReconstructNeedsAtLeastK) {
  ReedSolomon rs(3, 2);
  std::vector<std::optional<common::Bytes>> shards(5);
  shards[0] = common::patterned(8, 0);
  shards[1] = common::patterned(8, 1);
  auto st = rs.reconstruct(shards);
  EXPECT_EQ(st.code(), common::StatusCode::kDataLoss);
}

TEST(ReedSolomon, ReconstructRejectsWrongSlotCount) {
  ReedSolomon rs(3, 2);
  std::vector<std::optional<common::Bytes>> shards(4);
  EXPECT_EQ(rs.reconstruct(shards).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(ReedSolomon, ReconstructRejectsMixedSizes) {
  ReedSolomon rs(2, 1);
  std::vector<std::optional<common::Bytes>> shards(3);
  shards[0] = common::patterned(8, 0);
  shards[1] = common::patterned(9, 1);
  shards[2] = common::patterned(8, 2);
  EXPECT_EQ(rs.reconstruct(shards).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(ReedSolomon, ParityDeltaMatchesReencode) {
  ReedSolomon rs(3, 2);
  auto data = make_shards(3, 64, 9);
  auto parity = rs.encode(data);
  ASSERT_TRUE(parity.is_ok());

  // Mutate data shard 1 and compute deltas.
  common::Bytes new_shard = common::patterned(64, 777);
  auto deltas = rs.parity_delta(1, data[1], new_shard);
  ASSERT_TRUE(deltas.is_ok());

  auto patched = parity.value();
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t i = 0; i < 64; ++i) {
      patched[p][i] ^= deltas.value()[p][i];
    }
  }

  data[1] = new_shard;
  auto expected = rs.encode(data);
  ASSERT_TRUE(expected.is_ok());
  EXPECT_EQ(patched, expected.value());
}

TEST(ReedSolomon, ParityDeltaRejectsBadIndex) {
  ReedSolomon rs(3, 1);
  common::Bytes a = common::patterned(8, 0);
  EXPECT_FALSE(rs.parity_delta(3, a, a).is_ok());
}

struct RsGeometry {
  std::size_t k;
  std::size_t m;
};

class ReedSolomonGeometryTest : public ::testing::TestWithParam<RsGeometry> {};

TEST_P(ReedSolomonGeometryTest, AnyKOfNReconstructsAllErasurePatterns) {
  const auto [k, m] = GetParam();
  ReedSolomon rs(k, m);
  const std::size_t n = k + m;
  const auto data = make_shards(k, 96, 1000 + k * 10 + m);
  auto parity = rs.encode(data);
  ASSERT_TRUE(parity.is_ok());
  std::vector<common::Bytes> all = data;
  for (auto& p : parity.value()) all.push_back(p);

  // Every erasure pattern with at most m missing shards must reconstruct.
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) > m) continue;
    std::vector<std::optional<common::Bytes>> shards(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!(mask & (1u << i))) shards[i] = all[i];
    }
    ASSERT_TRUE(rs.reconstruct(shards).is_ok()) << "mask=" << mask;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(*shards[i], all[i]) << "mask=" << mask << " shard=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ReedSolomonGeometryTest,
    ::testing::Values(RsGeometry{1, 1}, RsGeometry{2, 1}, RsGeometry{3, 1},
                      RsGeometry{3, 2}, RsGeometry{4, 2}, RsGeometry{5, 3},
                      RsGeometry{6, 3}, RsGeometry{8, 4}),
    [](const ::testing::TestParamInfo<RsGeometry>& info) {
      return "k" + std::to_string(info.param.k) + "m" +
             std::to_string(info.param.m);
    });

TEST(ReedSolomon, RandomizedRoundTrips) {
  common::Xoshiro256 rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t k = rng.uniform_int(1, 8);
    const std::size_t m = rng.uniform_int(1, 4);
    const std::size_t shard_size = rng.uniform_int(1, 512);
    ReedSolomon rs(k, m);
    auto data = make_shards(k, shard_size, rng());
    auto parity = rs.encode(data);
    ASSERT_TRUE(parity.is_ok());
    std::vector<common::Bytes> all = data;
    for (auto& p : parity.value()) all.push_back(p);

    // Erase a random subset of size <= m.
    std::vector<std::optional<common::Bytes>> shards(k + m);
    std::size_t erased = 0;
    for (std::size_t i = 0; i < k + m; ++i) {
      if (erased < m && rng.chance(0.3)) {
        ++erased;
        continue;
      }
      shards[i] = all[i];
    }
    ASSERT_TRUE(rs.reconstruct(shards).is_ok());
    for (std::size_t i = 0; i < k + m; ++i) EXPECT_EQ(*shards[i], all[i]);
  }
}

}  // namespace
}  // namespace hyrd::erasure
