#include <gtest/gtest.h>

#include "common/rng.h"
#include "erasure/raid5.h"
#include "erasure/striper.h"

namespace hyrd::erasure {
namespace {

std::vector<common::Bytes> make_shards(std::size_t k, std::size_t shard_size,
                                       std::uint64_t seed) {
  std::vector<common::Bytes> shards;
  for (std::size_t i = 0; i < k; ++i) {
    shards.push_back(common::patterned(shard_size, seed + i));
  }
  return shards;
}

TEST(Raid5, ParityIsXorOfData) {
  Raid5 raid(3);
  auto data = make_shards(3, 32, 1);
  auto parity = raid.encode(data);
  ASSERT_TRUE(parity.is_ok());
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(parity.value()[i], data[0][i] ^ data[1][i] ^ data[2][i]);
  }
}

TEST(Raid5, ReconstructEachPossibleSingleLoss) {
  Raid5 raid(4);
  auto data = make_shards(4, 64, 2);
  auto parity = raid.encode(data);
  ASSERT_TRUE(parity.is_ok());
  std::vector<common::Bytes> all = data;
  all.push_back(parity.value());

  for (std::size_t missing = 0; missing < 5; ++missing) {
    std::vector<std::optional<common::Bytes>> shards(5);
    for (std::size_t i = 0; i < 5; ++i) {
      if (i != missing) shards[i] = all[i];
    }
    ASSERT_TRUE(raid.reconstruct(shards).is_ok()) << "missing=" << missing;
    EXPECT_EQ(*shards[missing], all[missing]);
  }
}

TEST(Raid5, ReconstructWithNothingMissingIsOk) {
  Raid5 raid(2);
  auto data = make_shards(2, 8, 3);
  auto parity = raid.encode(data);
  std::vector<std::optional<common::Bytes>> shards = {data[0], data[1],
                                                      parity.value()};
  EXPECT_TRUE(raid.reconstruct(shards).is_ok());
}

TEST(Raid5, TwoMissingIsDataLoss) {
  Raid5 raid(3);
  std::vector<std::optional<common::Bytes>> shards(4);
  shards[0] = common::patterned(8, 0);
  shards[1] = common::patterned(8, 1);
  EXPECT_EQ(raid.reconstruct(shards).code(), common::StatusCode::kDataLoss);
}

TEST(Raid5, DeltaParityMatchesFullReencode) {
  Raid5 raid(3);
  auto data = make_shards(3, 48, 4);
  auto old_parity = raid.encode(data);
  ASSERT_TRUE(old_parity.is_ok());

  common::Bytes new_data = common::patterned(48, 999);
  const common::Bytes patched =
      Raid5::delta_parity(old_parity.value(), data[1], new_data);

  data[1] = new_data;
  auto expected = raid.encode(data);
  ASSERT_TRUE(expected.is_ok());
  EXPECT_EQ(patched, expected.value());
}

TEST(Raid5, VerifyDetectsCorruption) {
  Raid5 raid(2);
  auto data = make_shards(2, 16, 5);
  auto parity = raid.encode(data);
  std::vector<common::Bytes> all = {data[0], data[1], parity.value()};
  EXPECT_TRUE(raid.verify(all));
  all[0][0] ^= 1;
  EXPECT_FALSE(raid.verify(all));
}

TEST(Raid5, AgreesWithReedSolomonM1OnXorParity) {
  // RS(k,1) built from the Cauchy generator is not necessarily plain XOR,
  // but both must satisfy: any k of k+1 shards reconstruct the data.
  // Here we just confirm Raid5's parity equals the XOR invariant that the
  // RAID5 small-update formula (delta_parity) relies on.
  Raid5 raid(5);
  auto data = make_shards(5, 16, 6);
  auto parity = raid.encode(data);
  ASSERT_TRUE(parity.is_ok());
  common::Bytes x(16, 0);
  for (const auto& d : data) {
    for (std::size_t i = 0; i < 16; ++i) x[i] ^= d[i];
  }
  EXPECT_EQ(parity.value(), x);
}

// ---------- Striper ----------

class StriperSizeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StriperSizeTest, EncodeDecodeRoundTrip) {
  const std::uint64_t size = GetParam();
  Striper striper({.k = 3, .m = 1});
  const common::Bytes object = common::patterned(size, size * 31 + 7);
  const StripeSet set = striper.encode(object);
  EXPECT_EQ(set.object_size, size);
  EXPECT_EQ(set.shards.size(), 4u);
  auto decoded = striper.decode(set);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), object);
}

TEST_P(StriperSizeTest, DegradedDecodeFromAnyKSurvivors) {
  const std::uint64_t size = GetParam();
  Striper striper({.k = 3, .m = 1});
  const common::Bytes object = common::patterned(size, size + 1);
  const StripeSet set = striper.encode(object);

  for (std::size_t missing = 0; missing < 4; ++missing) {
    std::vector<std::optional<common::Bytes>> shards(4);
    for (std::size_t i = 0; i < 4; ++i) {
      if (i != missing) shards[i] = set.shards[i].to_bytes();
    }
    auto decoded = striper.decode_degraded(set.geometry, set.object_size,
                                           set.object_crc, std::move(shards));
    ASSERT_TRUE(decoded.is_ok()) << "missing=" << missing;
    EXPECT_EQ(decoded.value(), object);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StriperSizeTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 100, 1023, 1024,
                                           1025, 4096, 65536, 1 << 20,
                                           (1 << 20) + 1, 3u << 20),
                         [](const auto& info) {
                           return "size" + std::to_string(info.param);
                         });

TEST(Striper, ShardSizeIsCeilDivision) {
  Striper striper({.k = 3, .m = 1});
  EXPECT_EQ(striper.shard_size_for(9), 3u);
  EXPECT_EQ(striper.shard_size_for(10), 4u);
  EXPECT_EQ(striper.shard_size_for(0), 1u);  // empty objects get 1-byte shards
}

TEST(Striper, ExpansionFactor) {
  EXPECT_DOUBLE_EQ((StripeGeometry{.k = 3, .m = 1}).expansion(), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ((StripeGeometry{.k = 4, .m = 2}).expansion(), 1.5);
}

TEST(Striper, DecodeDetectsCorruptObject) {
  Striper striper({.k = 2, .m = 1});
  const common::Bytes object = common::patterned(100, 8);
  StripeSet set = striper.encode(object);
  common::Bytes corrupt = set.shards[0].to_bytes();
  corrupt[5] ^= 0xFF;
  set.shards[0] = common::Buffer::from(std::move(corrupt));
  auto decoded = striper.decode(set);
  EXPECT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), common::StatusCode::kDataLoss);
}

TEST(Striper, DegradedDecodeGeometryMismatchRejected) {
  Striper striper({.k = 3, .m = 1});
  auto r = striper.decode_degraded({.k = 2, .m = 1}, 10, 0, {});
  EXPECT_FALSE(r.is_ok());
}

TEST(Striper, RsGeometryRoundTrip) {
  Striper striper({.k = 5, .m = 3});
  const common::Bytes object = common::patterned(12345, 3);
  const StripeSet set = striper.encode(object);
  ASSERT_EQ(set.shards.size(), 8u);

  // Lose three shards (the tolerance limit).
  std::vector<std::optional<common::Bytes>> shards(8);
  for (std::size_t i = 0; i < 8; ++i) {
    if (i != 1 && i != 4 && i != 7) shards[i] = set.shards[i].to_bytes();
  }
  auto decoded = striper.decode_degraded(set.geometry, set.object_size,
                                         set.object_crc, std::move(shards));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), object);
}

}  // namespace
}  // namespace hyrd::erasure
