#include "erasure/matrix.h"

#include <gtest/gtest.h>

namespace hyrd::erasure {
namespace {

TEST(Matrix, IdentityTimesAnythingIsIdentity) {
  const Matrix id = Matrix::identity(4);
  Matrix m(4, 4);
  std::uint8_t v = 1;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) m.at(r, c) = v++;
  }
  EXPECT_EQ(id.mul(m), m);
  EXPECT_EQ(m.mul(id), m);
}

TEST(Matrix, IdentityInvertsToItself) {
  const Matrix id = Matrix::identity(5);
  auto inv = id.inverted();
  ASSERT_TRUE(inv.is_ok());
  EXPECT_EQ(inv.value(), id);
}

TEST(Matrix, InvertRoundTrip) {
  const Matrix c = Matrix::cauchy(4, 4);
  auto inv = c.inverted();
  ASSERT_TRUE(inv.is_ok());
  EXPECT_EQ(c.mul(inv.value()), Matrix::identity(4));
  EXPECT_EQ(inv.value().mul(c), Matrix::identity(4));
}

TEST(Matrix, SingularMatrixFailsInversion) {
  Matrix m(3, 3);
  // Two identical rows => singular.
  for (std::size_t c = 0; c < 3; ++c) {
    m.at(0, c) = static_cast<std::uint8_t>(c + 1);
    m.at(1, c) = static_cast<std::uint8_t>(c + 1);
    m.at(2, c) = static_cast<std::uint8_t>(7 * c + 3);
  }
  auto inv = m.inverted();
  EXPECT_FALSE(inv.is_ok());
  EXPECT_EQ(inv.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(Matrix, ZeroMatrixIsSingular) {
  Matrix m(2, 2);
  EXPECT_FALSE(m.inverted().is_ok());
}

TEST(Matrix, CauchyHasNoZeros) {
  const Matrix c = Matrix::cauchy(8, 8);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t j = 0; j < 8; ++j) EXPECT_NE(c.at(r, j), 0);
  }
}

TEST(Matrix, CauchySquareSubmatricesInvertible) {
  // The defining property that makes Cauchy safe for RS: any square
  // submatrix is invertible. Spot-check 2x2 minors of a 4x6 Cauchy.
  const Matrix c = Matrix::cauchy(4, 6);
  for (std::size_t r1 = 0; r1 < 4; ++r1) {
    for (std::size_t r2 = r1 + 1; r2 < 4; ++r2) {
      for (std::size_t c1 = 0; c1 < 6; ++c1) {
        for (std::size_t c2 = c1 + 1; c2 < 6; ++c2) {
          Matrix minor(2, 2);
          minor.at(0, 0) = c.at(r1, c1);
          minor.at(0, 1) = c.at(r1, c2);
          minor.at(1, 0) = c.at(r2, c1);
          minor.at(1, 1) = c.at(r2, c2);
          EXPECT_TRUE(minor.inverted().is_ok())
              << "minor (" << r1 << "," << r2 << ")x(" << c1 << "," << c2
              << ")";
        }
      }
    }
  }
}

TEST(Matrix, RsGeneratorTopIsIdentity) {
  const Matrix gen = Matrix::rs_generator(4, 2);
  ASSERT_EQ(gen.rows(), 6u);
  ASSERT_EQ(gen.cols(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(gen.at(r, c), r == c ? 1 : 0);
    }
  }
}

TEST(Matrix, RsGeneratorAnyKRowsInvertible) {
  // Exhaustively check every k-subset of rows for RS(3, 2).
  const std::size_t k = 3, m = 2;
  const Matrix gen = Matrix::rs_generator(k, m);
  const std::size_t n = k + m;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      for (std::size_t c = b + 1; c < n; ++c) {
        const Matrix sub = gen.select_rows({a, b, c});
        EXPECT_TRUE(sub.inverted().is_ok())
            << "rows " << a << "," << b << "," << c;
      }
    }
  }
}

TEST(Matrix, SelectRowsExtracts) {
  Matrix m(3, 2);
  m.at(0, 0) = 1;
  m.at(1, 0) = 2;
  m.at(2, 0) = 3;
  const Matrix sel = m.select_rows({2, 0});
  EXPECT_EQ(sel.rows(), 2u);
  EXPECT_EQ(sel.at(0, 0), 3);
  EXPECT_EQ(sel.at(1, 0), 1);
}

}  // namespace
}  // namespace hyrd::erasure
