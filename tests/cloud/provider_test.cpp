#include "cloud/provider.h"

#include <gtest/gtest.h>

#include "cloud/profiles.h"

namespace hyrd::cloud {
namespace {

ProviderConfig test_config(const std::string& name = "TestCloud") {
  ProviderConfig c;
  c.name = name;
  c.latency = LatencyParams{.jitter_sigma = 0.0};
  c.prices = PriceSchedule{.storage_gb_month = 0.1, .data_out_gb = 0.2};
  return c;
}

TEST(SimProvider, FiveFunctionLifecycle) {
  SimProvider p(test_config(), 1);
  ASSERT_TRUE(p.create("c").ok());
  ASSERT_TRUE(p.put({"c", "k"}, common::bytes_of("hello")).ok());

  auto got = p.get({"c", "k"});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(common::to_string(got.data), "hello");
  EXPECT_EQ(got.bytes_transferred, 5u);

  auto listing = p.list("c");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing.names, std::vector<std::string>{"k"});

  ASSERT_TRUE(p.remove({"c", "k"}).ok());
  EXPECT_FALSE(p.get({"c", "k"}).ok());
}

TEST(SimProvider, LatencyIsPositiveAndSizeDependent) {
  SimProvider p(test_config(), 1);
  p.create("c");
  auto small = p.put({"c", "s"}, common::Bytes(1000, 0));
  auto large = p.put({"c", "l"}, common::Bytes(1000000, 0));
  EXPECT_GT(small.latency, 0);
  EXPECT_GT(large.latency, small.latency);
}

TEST(SimProvider, OfflineRejectsEverything) {
  SimProvider p(test_config(), 1);
  p.create("c");
  p.put({"c", "k"}, common::bytes_of("v"));
  p.set_online(false);

  EXPECT_EQ(p.get({"c", "k"}).status.code(), common::StatusCode::kUnavailable);
  EXPECT_EQ(p.put({"c", "k2"}, common::Buffer()).status.code(),
            common::StatusCode::kUnavailable);
  EXPECT_EQ(p.list("c").status.code(), common::StatusCode::kUnavailable);
  EXPECT_EQ(p.remove({"c", "k"}).status.code(),
            common::StatusCode::kUnavailable);
  EXPECT_EQ(p.create("c2").status.code(), common::StatusCode::kUnavailable);
  EXPECT_EQ(p.counters().rejected_unavailable, 5u);
}

TEST(SimProvider, TransientOutagePreservesData) {
  SimProvider p(test_config(), 1);
  p.create("c");
  p.put({"c", "k"}, common::bytes_of("v"));
  p.set_online(false);
  p.set_online(true);
  auto got = p.get({"c", "k"});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(common::to_string(got.data), "v");
}

TEST(SimProvider, PermanentFailureWipesData) {
  SimProvider p(test_config(), 1);
  p.create("c");
  p.put({"c", "k"}, common::bytes_of("v"));
  p.fail_permanently();
  EXPECT_FALSE(p.online());
  EXPECT_TRUE(p.permanently_failed());
  // A destroyed provider cannot be resurrected: set_online(true) is
  // refused and every op keeps failing as unavailable.
  EXPECT_FALSE(p.set_online(true));
  EXPECT_FALSE(p.online());
  EXPECT_EQ(p.get({"c", "k"}).status.code(),
            common::StatusCode::kUnavailable);
}

TEST(SimProvider, PermanentFailureStillAllowsGoingOffline) {
  SimProvider p(test_config(), 1);
  p.fail_permanently();
  // Only resurrection is refused; a redundant "go offline" is fine.
  EXPECT_TRUE(p.set_online(false));
  EXPECT_FALSE(p.online());
}

TEST(SimProvider, CountersTrackOpsAndBytes) {
  SimProvider p(test_config(), 1);
  p.create("c");
  p.put({"c", "k"}, common::Bytes(100, 0));
  p.get({"c", "k"});
  p.get({"c", "k"});
  p.list("c");
  auto counters = p.counters();
  EXPECT_EQ(counters.creates, 1u);
  EXPECT_EQ(counters.puts, 1u);
  EXPECT_EQ(counters.gets, 2u);
  EXPECT_EQ(counters.lists, 1u);
  EXPECT_EQ(counters.bytes_written, 100u);
  EXPECT_EQ(counters.bytes_read, 200u);
  EXPECT_EQ(counters.total_ops(), 5u);
  p.reset_counters();
  EXPECT_EQ(p.counters().total_ops(), 0u);
}

TEST(SimProvider, BillingChargesOps) {
  SimProvider p(test_config(), 1);
  p.create("c");
  p.put({"c", "k"}, common::Bytes(1'000'000, 0));
  p.get({"c", "k"});
  auto bill = p.close_month();
  EXPECT_EQ(bill.bytes_in, 1'000'000u);
  EXPECT_EQ(bill.bytes_out, 1'000'000u);
  EXPECT_GT(bill.egress_cost, 0.0);
  EXPECT_EQ(bill.stored_bytes, 1'000'000u);
}

TEST(SimProvider, DeterministicForSameSeed) {
  SimProvider a(test_config(), 99);
  SimProvider b(test_config(), 99);
  a.create("c");
  b.create("c");
  // Jitter disabled here, so add some.
  auto cfg = test_config();
  cfg.latency.jitter_sigma = 0.2;
  SimProvider c1(cfg, 5), c2(cfg, 5);
  c1.create("c");
  c2.create("c");
  auto r1 = c1.put({"c", "k"}, common::Bytes(5000, 0));
  auto r2 = c2.put({"c", "k"}, common::Bytes(5000, 0));
  EXPECT_EQ(r1.latency, r2.latency);
}

TEST(Profiles, TableIIPricesTranscribed) {
  const auto s3 = amazon_s3_profile();
  EXPECT_DOUBLE_EQ(s3.prices.storage_gb_month, 0.033);
  EXPECT_DOUBLE_EQ(s3.prices.data_out_gb, 0.201);
  EXPECT_DOUBLE_EQ(s3.prices.put_class_per_10k, 0.047);
  EXPECT_DOUBLE_EQ(s3.prices.get_class_per_10k, 0.0037);

  const auto azure = windows_azure_profile();
  EXPECT_DOUBLE_EQ(azure.prices.storage_gb_month, 0.157);
  EXPECT_DOUBLE_EQ(azure.prices.data_out_gb, 0.0);

  const auto aliyun = aliyun_profile();
  EXPECT_DOUBLE_EQ(aliyun.prices.storage_gb_month, 0.029);
  EXPECT_DOUBLE_EQ(aliyun.prices.data_out_gb, 0.123);
  EXPECT_DOUBLE_EQ(aliyun.prices.put_class_per_10k, 0.0016);

  const auto rs = rackspace_profile();
  EXPECT_DOUBLE_EQ(rs.prices.storage_gb_month, 0.13);
  EXPECT_DOUBLE_EQ(rs.prices.data_out_gb, 0.0);
}

TEST(Profiles, CategoriesMatchTableII) {
  EXPECT_EQ(amazon_s3_profile().declared_category.str(), "cost-oriented");
  EXPECT_EQ(windows_azure_profile().declared_category.str(),
            "performance-oriented");
  EXPECT_EQ(aliyun_profile().declared_category.str(), "both");
  EXPECT_EQ(rackspace_profile().declared_category.str(), "cost-oriented");
}

TEST(Profiles, AliyunIsFastestProvider) {
  // Paper Fig. 5: Aliyun has the lowest access latency across sizes.
  const auto configs = standard_four();
  const auto aliyun = aliyun_profile();
  for (const auto& c : configs) {
    if (c.name == "Aliyun") continue;
    for (std::uint64_t size : {4096ull, 65536ull, 1048576ull, 4194304ull}) {
      LatencyModel other(c.latency), ali(aliyun.latency);
      EXPECT_LT(ali.expected(OpKind::kGet, size),
                other.expected(OpKind::kGet, size))
          << c.name << " size=" << size;
      EXPECT_LT(ali.expected(OpKind::kPut, size),
                other.expected(OpKind::kPut, size))
          << c.name << " size=" << size;
    }
  }
}

}  // namespace
}  // namespace hyrd::cloud
