// The bounded-capacity fair queue (cloud/congestion.h): slot queueing,
// the depth-cap 429, start-time-fair-queuing pacing, and the SimProvider
// integration (only VirtualScope traffic is subject to it).
#include <gtest/gtest.h>

#include "cloud/congestion.h"
#include "cloud/profiles.h"
#include "cloud/provider.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/virtual_time.h"

namespace hyrd::cloud {
namespace {

CongestionParams narrow(std::size_t channels, std::size_t depth = 250'000) {
  return {.channels = channels,
          .per_op_service_ms = 10.0,
          .service_mbps = 200.0,
          .max_queue_depth = depth};
}

constexpr common::SimDuration kTenMs = 10 * common::kMillisecond;

TEST(FairQueue, UncontendedOpsPassWithZeroWait) {
  FairQueue q(narrow(2));
  // Distinct tenants, free slots: no queueing, no pacing.
  EXPECT_EQ(q.admit(1, 1.0, 0, 0).wait, 0);
  EXPECT_EQ(q.admit(2, 1.0, 0, 0).wait, 0);
  EXPECT_EQ(q.stats().admitted, 2u);
  EXPECT_EQ(q.stats().queued, 0u);
}

TEST(FairQueue, SingleChannelQueuesFifo) {
  FairQueue q(narrow(1));
  EXPECT_EQ(q.admit(1, 1.0, 0, 0).wait, 0);
  EXPECT_EQ(q.admit(2, 1.0, 0, 0).wait, kTenMs);
  EXPECT_EQ(q.admit(3, 1.0, 0, 0).wait, 2 * kTenMs);
  EXPECT_EQ(q.stats().queued, 2u);
  EXPECT_EQ(q.stats().max_wait, 2 * kTenMs);
}

TEST(FairQueue, ServiceTimeChargesBytes) {
  FairQueue q(narrow(1));
  // 2 MB at 200 MB/s = 10 ms on top of the 10 ms per-op cost.
  EXPECT_EQ(q.service_time(2'000'000), 2 * kTenMs);
  EXPECT_EQ(q.service_time(0), kTenMs);
}

TEST(FairQueue, DepthCapRejectsWithThrottleStat) {
  FairQueue q(narrow(1, /*depth=*/2));
  EXPECT_TRUE(q.admit(1, 1.0, 0, 0).admitted);  // runs, not waiting
  EXPECT_TRUE(q.admit(2, 1.0, 0, 0).admitted);  // waiting (depth 1)
  EXPECT_TRUE(q.admit(3, 1.0, 0, 0).admitted);  // waiting (depth 2)
  EXPECT_FALSE(q.admit(4, 1.0, 0, 0).admitted);
  EXPECT_EQ(q.stats().throttled, 1u);
  EXPECT_EQ(q.stats().peak_depth, 2u);

  // Once virtual time passes the backlog's begin times, admission resumes.
  EXPECT_TRUE(q.admit(4, 1.0, 3 * kTenMs, 0).admitted);
}

TEST(FairQueue, HotFlowSelfQueuesWhileLightFlowPassesThrough) {
  // Five free channels, one tenant bursting 4 ops at t=0: pacing gates
  // each of its ops behind its own flow tag (begins 0/10/20/30 ms despite
  // the idle slots), so a light tenant arriving at the same instant finds
  // a free slot and starts immediately — the starvation-prevention
  // property one hot tenant must not defeat.
  FairQueue q(narrow(5));
  common::SimDuration hot_wait = 0;
  for (int i = 0; i < 4; ++i) hot_wait += q.admit(7, 1.0, 0, 0).wait;
  EXPECT_EQ(hot_wait, (1 + 2 + 3) * kTenMs);  // begins 0, 10, 20, 30 ms
  EXPECT_EQ(q.admit(8, 1.0, 0, 0).wait, 0);   // light flow: untouched
}

TEST(FairQueue, HigherWeightMeansLessSelfQueueing) {
  FairQueue heavy(narrow(4));
  FairQueue light(narrow(4));
  common::SimDuration w4 = 0, w1 = 0;
  for (int i = 0; i < 4; ++i) {
    w4 += heavy.admit(7, 4.0, 0, 0).wait;
    w1 += light.admit(7, 1.0, 0, 0).wait;
  }
  // Weight 4 advances its tag by service/4 per op: a quarter the pacing.
  EXPECT_LT(w4, w1);
  EXPECT_EQ(w4, (1 + 2 + 3) * kTenMs / 4);
}

TEST(FairQueue, LateArrivalsNeverRewindState) {
  FairQueue q(narrow(1));
  EXPECT_EQ(q.admit(1, 1.0, 5 * kTenMs, 0).wait, 0);
  // An op arriving "late" (failover chain) still queues behind the slot.
  const auto a = q.admit(2, 1.0, 0, 0);
  EXPECT_EQ(a.wait, 6 * kTenMs);  // slot busy until t=60ms
}

TEST(SimProviderCongestion, OnlyVirtualScopeTrafficIsSubject) {
  SimProvider provider(aliyun_profile(), 42);
  provider.set_congestion(narrow(1));
  ASSERT_TRUE(provider.congestion_enabled());
  ASSERT_TRUE(provider.create("c").status.is_ok());

  // No VirtualScope: legacy path, the queue never sees the op.
  ASSERT_TRUE(provider.put({"c", "legacy"}, common::Buffer::of("x")).status.is_ok());
  EXPECT_EQ(provider.congestion_stats().admitted, 0u);

  // Under a scope the same op is admitted (and the wait lands in latency).
  {
    common::VirtualScope scope({.now = 0, .tenant = 1, .weight = 1.0});
    ASSERT_TRUE(provider.put({"c", "sim"}, common::Buffer::of("y")).status.is_ok());
  }
  EXPECT_EQ(provider.congestion_stats().admitted, 1u);
}

TEST(SimProviderCongestion, OverloadReturns429AndCountsThrottled) {
  SimProvider provider(aliyun_profile(), 42);
  provider.set_congestion(narrow(1, /*depth=*/1));
  ASSERT_TRUE(provider.create("c").status.is_ok());

  common::VirtualScope scope({.now = 0, .tenant = 5, .weight = 1.0});
  OpResult last;
  int throttled = 0;
  for (int i = 0; i < 4; ++i) {
    last = provider.put({"c", "o" + std::to_string(i)},
                        common::Buffer::of("z"));
    if (!last.status.is_ok()) ++throttled;
  }
  EXPECT_GT(throttled, 0);
  EXPECT_EQ(last.status.code(), common::StatusCode::kResourceExhausted);
  EXPECT_EQ(provider.counters().throttled, static_cast<std::uint64_t>(throttled));
  // Throttled ops never reach the store.
  EXPECT_EQ(provider.object_count(), 4u - static_cast<unsigned>(throttled));
}

TEST(SimProviderCongestion, QueueingDelayIsVisibleInOpLatency) {
  // Twin providers, same seed: the only difference is the installed queue.
  SimProvider free_p(aliyun_profile(), 99);
  SimProvider queued_p(aliyun_profile(), 99);
  queued_p.set_congestion(narrow(1));
  ASSERT_TRUE(free_p.create("c").status.is_ok());
  ASSERT_TRUE(queued_p.create("c").status.is_ok());

  common::SimDuration lat_free = 0, lat_queued = 0;
  {
    common::VirtualScope scope({.now = 0, .tenant = 1, .weight = 1.0});
    for (int i = 0; i < 3; ++i) {
      lat_free = free_p.put({"c", "o"}, common::Buffer::of("x")).latency;
      // Distinct tenants so pacing doesn't apply: pure slot queueing.
      common::VirtualScope inner(
          {.now = 0, .tenant = 10 + static_cast<std::uint64_t>(i),
           .weight = 1.0});
      lat_queued = queued_p.put({"c", "o"}, common::Buffer::of("x")).latency;
    }
  }
  // Third op on the single-channel provider carries >= 2 service times of
  // queueing delay on top of the identically-seeded base latency.
  EXPECT_GE(lat_queued, lat_free + 2 * kTenMs);
}

TEST(FairQueue, DepthCapBoundaryAdmitsExactlyMaxQueueDepthWaiters) {
  // The cap counts *waiters*, not in-service requests: with C channels and
  // depth D, exactly C + D simultaneous arrivals are admitted and the
  // (C + D + 1)-th is the first 429. Guards the off-by-one at the
  // `waiting >= max_queue_depth` boundary.
  constexpr std::size_t kChannels = 2;
  constexpr std::size_t kDepth = 5;
  FairQueue q(narrow(kChannels, kDepth));
  for (std::size_t i = 0; i < kChannels + kDepth; ++i) {
    EXPECT_TRUE(q.admit(100 + i, 1.0, 0, 0).admitted) << "arrival " << i;
  }
  EXPECT_EQ(q.stats().peak_depth, kDepth);
  EXPECT_EQ(q.stats().throttled, 0u);
  // One more at the same instant: the queue is exactly full.
  EXPECT_FALSE(q.admit(999, 1.0, 0, 0).admitted);
  EXPECT_EQ(q.stats().throttled, 1u);
  EXPECT_EQ(q.stats().peak_depth, kDepth);  // never exceeded the cap
}

}  // namespace
}  // namespace hyrd::cloud
