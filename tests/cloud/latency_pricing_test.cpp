#include <gtest/gtest.h>

#include <cmath>

#include "cloud/latency_model.h"
#include "cloud/pricing.h"
#include "common/units.h"

namespace hyrd::cloud {
namespace {

LatencyParams flat_params() {
  LatencyParams p;
  p.read_first_byte_ms = 100.0;
  p.write_first_byte_ms = 150.0;
  p.read_mbps = 1.0;  // 1 MB/s => 1 ms per KB
  p.write_mbps = 1.0;
  p.congestion_threshold = 1u << 20;
  p.congestion_factor = 2.0;
  p.jitter_sigma = 0.0;
  p.metadata_op_ms = 10.0;
  return p;
}

TEST(LatencyModel, FirstByteDominatesSmallReads) {
  LatencyModel m(flat_params());
  const auto lat = m.expected(OpKind::kGet, 0);
  EXPECT_DOUBLE_EQ(common::to_ms(lat), 100.0);
}

TEST(LatencyModel, TransferScalesLinearlyBelowThreshold) {
  LatencyModel m(flat_params());
  const double l1 = common::to_ms(m.expected(OpKind::kGet, 100 * 1000));
  const double l2 = common::to_ms(m.expected(OpKind::kGet, 200 * 1000));
  EXPECT_NEAR(l2 - l1, 100.0, 1e-6);  // +100 KB at 1 MB/s = +100 ms
}

TEST(LatencyModel, CongestionKneeAboveThreshold) {
  // The paper's Fig. 5 observation: latency grows disproportionally past
  // ~1 MB. Marginal cost per byte above the threshold must be
  // congestion_factor times the marginal cost below it.
  LatencyModel m(flat_params());
  const std::uint64_t t = (1u << 20);
  const double below = common::to_ms(m.expected(OpKind::kGet, t)) -
                       common::to_ms(m.expected(OpKind::kGet, t - 100000));
  const double above = common::to_ms(m.expected(OpKind::kGet, t + 100000)) -
                       common::to_ms(m.expected(OpKind::kGet, t));
  EXPECT_NEAR(above / below, 2.0, 1e-6);
}

TEST(LatencyModel, WritesSlowerThanReads) {
  LatencyModel m(flat_params());
  EXPECT_GT(m.expected(OpKind::kPut, 1000), m.expected(OpKind::kGet, 1000));
}

TEST(LatencyModel, MetadataOpsFlat) {
  LatencyModel m(flat_params());
  EXPECT_EQ(m.expected(OpKind::kList, 0), m.expected(OpKind::kRemove, 1 << 20));
  EXPECT_DOUBLE_EQ(common::to_ms(m.expected(OpKind::kCreate, 0)), 10.0);
}

TEST(LatencyModel, JitterIsMultiplicativeAndSeeded) {
  LatencyParams p = flat_params();
  p.jitter_sigma = 0.2;
  LatencyModel m(p);
  common::Xoshiro256 rng1(5), rng2(5);
  const auto a = m.sample(OpKind::kGet, 1000, rng1);
  const auto b = m.sample(OpKind::kGet, 1000, rng2);
  EXPECT_EQ(a, b);  // deterministic per seed
  // Mean over many samples approaches expected * exp(sigma^2/2).
  common::Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    sum += common::to_ms(m.sample(OpKind::kGet, 1000, rng));
  }
  const double expected_mean =
      common::to_ms(m.expected(OpKind::kGet, 1000)) * std::exp(0.2 * 0.2 / 2);
  EXPECT_NEAR(sum / 20000, expected_mean, expected_mean * 0.02);
}

TEST(LatencyModel, ZeroJitterSampleEqualsExpected) {
  LatencyModel m(flat_params());
  common::Xoshiro256 rng(1);
  EXPECT_EQ(m.sample(OpKind::kGet, 12345, rng),
            m.expected(OpKind::kGet, 12345));
}

TEST(PriceSchedule, StorageCostPerDecimalGB) {
  PriceSchedule p{.storage_gb_month = 0.10};
  EXPECT_DOUBLE_EQ(p.storage_cost(1'000'000'000ull), 0.10);
  EXPECT_DOUBLE_EQ(p.storage_cost(500'000'000ull), 0.05);
}

TEST(PriceSchedule, TransferCosts) {
  PriceSchedule p{.data_in_gb = 0.0, .data_out_gb = 0.2};
  EXPECT_DOUBLE_EQ(p.ingress_cost(5'000'000'000ull), 0.0);
  EXPECT_DOUBLE_EQ(p.egress_cost(5'000'000'000ull), 1.0);
}

TEST(PriceSchedule, TransactionClasses) {
  PriceSchedule p{.put_class_per_10k = 0.05, .get_class_per_10k = 0.004};
  EXPECT_DOUBLE_EQ(p.txn_cost(OpKind::kPut, 10000), 0.05);
  EXPECT_DOUBLE_EQ(p.txn_cost(OpKind::kList, 10000), 0.05);
  EXPECT_DOUBLE_EQ(p.txn_cost(OpKind::kCreate, 10000), 0.05);
  EXPECT_DOUBLE_EQ(p.txn_cost(OpKind::kGet, 10000), 0.004);
  EXPECT_DOUBLE_EQ(p.txn_cost(OpKind::kRemove, 10000), 0.004);
}

TEST(ProviderCategory, Names) {
  EXPECT_EQ((ProviderCategory{true, true}).str(), "both");
  EXPECT_EQ((ProviderCategory{true, false}).str(), "cost-oriented");
  EXPECT_EQ((ProviderCategory{false, true}).str(), "performance-oriented");
  EXPECT_EQ((ProviderCategory{false, false}).str(), "uncategorized");
}

TEST(OpKind, PutClassMembership) {
  EXPECT_TRUE(is_put_class(OpKind::kPut));
  EXPECT_TRUE(is_put_class(OpKind::kCreate));
  EXPECT_TRUE(is_put_class(OpKind::kList));
  EXPECT_FALSE(is_put_class(OpKind::kGet));
  EXPECT_FALSE(is_put_class(OpKind::kRemove));
}

}  // namespace
}  // namespace hyrd::cloud
