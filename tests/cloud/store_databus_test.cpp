// Zero-copy store semantics, the uint64 range-overflow regressions, and a
// sanitizer-targeted concurrency stress over the sharded MemoryStore.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cloud/memory_store.h"
#include "cloud/provider.h"
#include "common/copy_meter.h"
#include "common/rng.h"

namespace hyrd::cloud {
namespace {

constexpr std::uint64_t kNearMax = ~std::uint64_t{0} - 7;

TEST(MemoryStoreDatabus, PutOfOwningBufferIsZeroCopy) {
  MemoryStore store;
  ASSERT_TRUE(store.create("c").is_ok());
  common::Buffer payload = common::Buffer::from(common::patterned(4096, 1));
  const std::uint8_t* raw = payload.data();
  common::reset_copied_bytes();
  ASSERT_TRUE(store.put("c", "o", payload).is_ok());
  EXPECT_EQ(common::copied_bytes(), 0u);  // kept by refbump, not memcpy

  auto got = store.get("c", "o");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().data(), raw);  // same block all the way through
  EXPECT_EQ(common::copied_bytes(), 0u);
}

TEST(MemoryStoreDatabus, PutOfBorrowedSpanIsCopiedForDurability) {
  MemoryStore store;
  ASSERT_TRUE(store.create("c").is_ok());
  common::Bytes caller = common::patterned(1024, 2);
  common::reset_copied_bytes();
  ASSERT_TRUE(store.put("c", "o", common::ByteSpan(caller)).is_ok());
  EXPECT_EQ(common::copied_bytes(), 1024u);
  caller[0] ^= 0xFF;  // mutating caller memory must not reach the store
  auto got = store.get("c", "o");
  ASSERT_TRUE(got.is_ok());
  EXPECT_NE(got.value()[0], caller[0]);
}

TEST(MemoryStoreDatabus, GetRangeIsSliceOfStoredBlock) {
  MemoryStore store;
  ASSERT_TRUE(store.create("c").is_ok());
  common::Buffer payload = common::Buffer::from(common::patterned(512, 3));
  ASSERT_TRUE(store.put("c", "o", payload).is_ok());
  common::reset_copied_bytes();
  auto r = store.get_range("c", "o", 100, 50);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(common::copied_bytes(), 0u);
  EXPECT_EQ(r.value().data(), payload.data() + 100);
}

TEST(MemoryStoreDatabus, PutRangeForksSharedBlock) {
  MemoryStore store;
  ASSERT_TRUE(store.create("c").is_ok());
  ASSERT_TRUE(
      store.put("c", "o", common::Buffer::from(common::patterned(64, 4)))
          .is_ok());
  auto before = store.get("c", "o");  // live reader holds the old block
  ASSERT_TRUE(before.is_ok());
  const std::uint8_t old_byte = before.value()[10];

  const common::Bytes patch(4, static_cast<std::uint8_t>(old_byte ^ 0x5A));
  ASSERT_TRUE(store.put_range("c", "o", 10, patch).is_ok());

  EXPECT_EQ(before.value()[10], old_byte);  // snapshot untouched (COW)
  auto after = store.get("c", "o");
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(after.value()[10], old_byte ^ 0x5A);
}

TEST(MemoryStoreDatabus, GetRangeRejectsOverflowingOffsets) {
  MemoryStore store;
  ASSERT_TRUE(store.create("c").is_ok());
  ASSERT_TRUE(
      store.put("c", "o", common::Buffer::from(common::patterned(100, 5)))
          .is_ok());
  // offset + length wraps around 2^64 to a small value; the naive
  // `offset + length > size` guard would admit it and read out of bounds.
  EXPECT_FALSE(store.get_range("c", "o", kNearMax, 16).is_ok());
  EXPECT_FALSE(store.get_range("c", "o", 16, kNearMax).is_ok());
  EXPECT_FALSE(store.get_range("c", "o", kNearMax, kNearMax).is_ok());
  EXPECT_FALSE(store.get_range("c", "o", 101, 0).is_ok());
  EXPECT_TRUE(store.get_range("c", "o", 100, 0).is_ok());
  EXPECT_TRUE(store.get_range("c", "o", 0, 100).is_ok());
}

TEST(MemoryStoreDatabus, PutRangeRejectsOverflowingOffsets) {
  MemoryStore store;
  ASSERT_TRUE(store.create("c").is_ok());
  ASSERT_TRUE(
      store.put("c", "o", common::Buffer::from(common::patterned(100, 6)))
          .is_ok());
  const common::Bytes patch(16, std::uint8_t{0xEE});
  EXPECT_FALSE(store.put_range("c", "o", kNearMax, patch).is_ok());
  EXPECT_FALSE(store.put_range("c", "o", 96, patch).is_ok());
  EXPECT_TRUE(store.put_range("c", "o", 84, patch).is_ok());
  // The rejected writes must not have altered the object.
  auto got = store.get("c", "o");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().size(), 100u);
}

TEST(MemoryStoreDatabus, ProviderRangePathsRejectOverflow) {
  // The same guard must hold through SimProvider's REST-facing range ops.
  ProviderConfig cfg;
  cfg.name = "p";
  SimProvider provider(cfg, 7);
  ASSERT_TRUE(provider.create("c").status.is_ok());
  ASSERT_TRUE(provider
                  .put({"c", "o"},
                       common::Buffer::from(common::patterned(256, 7)))
                  .status.is_ok());
  EXPECT_FALSE(provider.get_range({"c", "o"}, kNearMax, 32).status.is_ok());
  EXPECT_FALSE(provider.get_range({"c", "o"}, 32, kNearMax).status.is_ok());
  const common::Bytes patch(32, std::uint8_t{0x11});
  EXPECT_FALSE(
      provider.put_range({"c", "o"}, kNearMax, common::Buffer::copy(patch))
          .status.is_ok());
  EXPECT_TRUE(
      provider.put_range({"c", "o"}, 0, common::Buffer::copy(patch))
          .status.is_ok());
}

TEST(MemoryStoreDatabus, StoredBytesCountsLogicalBytes) {
  // Billing model: N fragments slicing one arena still bill N * size —
  // logical bytes, independent of physical sharing.
  MemoryStore store;
  ASSERT_TRUE(store.create("c").is_ok());
  common::Buffer arena = common::Buffer::from(common::patterned(300, 8));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.put("c", "frag" + std::to_string(i),
                          arena.slice(static_cast<std::size_t>(i) * 100, 100))
                    .is_ok());
  }
  EXPECT_EQ(store.stored_bytes(), 300u);
  ASSERT_TRUE(store.remove("c", "frag1").is_ok());
  EXPECT_EQ(store.stored_bytes(), 200u);
}

TEST(MemoryStoreDatabus, ConcurrentSharedKeyChurn) {
  // TSan target: concurrent put/get/get_range/remove/wipe over shared keys
  // and shared blocks. Correctness bar: no data race, and every successful
  // get returns a self-consistent patterned payload.
  MemoryStore store;
  for (int c = 0; c < 4; ++c) {
    ASSERT_TRUE(store.create("c" + std::to_string(c)).is_ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_reads{0};
  std::vector<std::thread> threads;

  for (int t = 0; t < 4; ++t) {  // writers: shared keys across threads
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 400; ++i) {
        const std::string container = "c" + std::to_string(i % 4);
        const std::string name = "k" + std::to_string((i + t) % 8);
        const std::uint64_t seed = static_cast<std::uint64_t>((i + t) % 8);
        common::Buffer payload =
            common::Buffer::from(common::patterned(1024, seed));
        (void)store.put(container, name, payload.slice(0, 1024));
        (void)store.put_range(container, name, 0,
                              payload.span().first(64));
      }
    });
  }
  for (int t = 0; t < 4; ++t) {  // readers
    threads.emplace_back([&store, &stop, &bad_reads, t] {
      while (!stop.load()) {
        for (int i = 0; i < 8; ++i) {
          const std::string container = "c" + std::to_string((i + t) % 4);
          const std::string name = "k" + std::to_string(i);
          auto got = store.get(container, name);
          if (got.is_ok() && got.value().size() != 1024) ++bad_reads;
          auto ranged = store.get_range(container, name, 512, 256);
          if (ranged.is_ok() && ranged.value().size() != 256) ++bad_reads;
        }
      }
    });
  }
  threads.emplace_back([&store, &stop] {  // remover + occasional wipe
    int n = 0;
    while (!stop.load()) {
      (void)store.remove("c" + std::to_string(n % 4),
                         "k" + std::to_string(n % 8));
      if (++n % 97 == 0) store.wipe();
    }
  });

  for (int t = 0; t < 4; ++t) threads[static_cast<std::size_t>(t)].join();
  stop = true;
  for (std::size_t t = 4; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(bad_reads.load(), 0u);
}

}  // namespace
}  // namespace hyrd::cloud
