// Byte-range operations: store- and provider-level semantics, latency and
// billing (these back the paper's block-granularity RAID5 update model).
#include <gtest/gtest.h>

#include "cloud/memory_store.h"
#include "cloud/provider.h"

namespace hyrd::cloud {
namespace {

TEST(MemoryStoreRange, GetRangeReturnsSlice) {
  MemoryStore store;
  store.create("c");
  store.put("c", "k", common::bytes_of("0123456789"));
  auto r = store.get_range("c", "k", 2, 5);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(common::to_string(r.value()), "23456");
}

TEST(MemoryStoreRange, GetRangeEdges) {
  MemoryStore store;
  store.create("c");
  store.put("c", "k", common::bytes_of("abcd"));
  EXPECT_EQ(common::to_string(store.get_range("c", "k", 0, 4).value()), "abcd");
  EXPECT_EQ(common::to_string(store.get_range("c", "k", 3, 1).value()), "d");
  EXPECT_EQ(store.get_range("c", "k", 4, 0).value().size(), 0u);
  EXPECT_FALSE(store.get_range("c", "k", 3, 2).is_ok());  // past end
  EXPECT_FALSE(store.get_range("c", "missing", 0, 1).is_ok());
  EXPECT_FALSE(store.get_range("nope", "k", 0, 1).is_ok());
}

TEST(MemoryStoreRange, PutRangePatchesInPlace) {
  MemoryStore store;
  store.create("c");
  store.put("c", "k", common::bytes_of("0123456789"));
  ASSERT_TRUE(store.put_range("c", "k", 3, common::bytes_of("XYZ")).is_ok());
  EXPECT_EQ(common::to_string(store.get("c", "k").value()), "012XYZ6789");
  // Size unchanged; stored_bytes unchanged.
  EXPECT_EQ(store.stored_bytes(), 10u);
}

TEST(MemoryStoreRange, PutRangeCannotGrowOrCreate) {
  MemoryStore store;
  store.create("c");
  store.put("c", "k", common::bytes_of("abc"));
  EXPECT_FALSE(store.put_range("c", "k", 2, common::bytes_of("xy")).is_ok());
  EXPECT_FALSE(store.put_range("c", "new", 0, common::bytes_of("x")).is_ok());
}

TEST(ProviderRange, LatencyScalesWithRangeNotObject) {
  ProviderConfig config;
  config.name = "T";
  config.latency = LatencyParams{.jitter_sigma = 0.0};
  SimProvider provider(config, 1);
  provider.create("c");
  provider.put({"c", "k"}, common::patterned(4 << 20, 1));

  auto full = provider.get({"c", "k"});
  auto range = provider.get_range({"c", "k"}, 100, 4096);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range.data.size(), 4096u);
  EXPECT_LT(range.latency, full.latency / 10);
}

TEST(ProviderRange, BillingChargesTransferredBytesOnly) {
  ProviderConfig config;
  config.name = "T";
  config.prices = PriceSchedule{.data_out_gb = 1.0};
  SimProvider provider(config, 1);
  provider.create("c");
  provider.put({"c", "k"}, common::patterned(1'000'000, 1));

  provider.get_range({"c", "k"}, 0, 1000);
  provider.put_range({"c", "k"}, 0, common::patterned(500, 2));
  auto bill = provider.close_month();
  EXPECT_EQ(bill.bytes_out, 1000u);
  EXPECT_EQ(bill.bytes_in, 1'000'000u + 500u);
  EXPECT_EQ(bill.get_class_txns, 1u);
  EXPECT_EQ(bill.put_class_txns, 3u);  // create + put + put_range
}

TEST(ProviderRange, OfflineRejectsRangeOps) {
  ProviderConfig config;
  config.name = "T";
  SimProvider provider(config, 1);
  provider.create("c");
  provider.put({"c", "k"}, common::patterned(100, 1));
  provider.set_online(false);
  EXPECT_EQ(provider.get_range({"c", "k"}, 0, 10).status.code(),
            common::StatusCode::kUnavailable);
  EXPECT_EQ(provider.put_range({"c", "k"}, 0, common::patterned(10, 2))
                .status.code(),
            common::StatusCode::kUnavailable);
}

TEST(ProviderRange, CountersIncludeRangeOps) {
  ProviderConfig config;
  config.name = "T";
  SimProvider provider(config, 1);
  provider.create("c");
  provider.put({"c", "k"}, common::patterned(100, 1));
  provider.reset_counters();
  provider.get_range({"c", "k"}, 0, 10);
  provider.put_range({"c", "k"}, 0, common::patterned(10, 2));
  const auto counters = provider.counters();
  EXPECT_EQ(counters.gets, 1u);
  EXPECT_EQ(counters.puts, 1u);
  EXPECT_EQ(counters.bytes_read, 10u);
  EXPECT_EQ(counters.bytes_written, 10u);
}

}  // namespace
}  // namespace hyrd::cloud
