#include <gtest/gtest.h>

#include "cloud/billing.h"
#include "cloud/pricing.h"

namespace hyrd::cloud {
namespace {

TieredRate s3_style_storage() {
  // 2014-style ladder: first TB at $0.033/GB, next 49 TB at $0.0324,
  // everything above at $0.031.
  return TieredRate({
      {1'000'000'000'000ull, 0.033},
      {50'000'000'000'000ull, 0.0324},
      {TieredRate::kUnbounded, 0.031},
  });
}

TEST(TieredRate, EmptyCostsNothing) {
  TieredRate rate;
  EXPECT_TRUE(rate.empty());
  EXPECT_DOUBLE_EQ(rate.cost(1'000'000'000ull), 0.0);
}

TEST(TieredRate, WithinFirstTierMatchesFlatRate) {
  const auto rate = s3_style_storage();
  EXPECT_NEAR(rate.cost(500'000'000'000ull), 0.033 * 500, 1e-9);
  EXPECT_DOUBLE_EQ(rate.first_tier_rate(), 0.033);
}

TEST(TieredRate, MarginalBillingAcrossTiers) {
  const auto rate = s3_style_storage();
  // 2 TB: first TB at 0.033, second at 0.0324.
  EXPECT_NEAR(rate.cost(2'000'000'000'000ull), 0.033 * 1000 + 0.0324 * 1000,
              1e-6);
}

TEST(TieredRate, UnboundedTailTier) {
  const auto rate = s3_style_storage();
  // 60 TB: 1 at .033 + 49 at .0324 + 10 at .031.
  EXPECT_NEAR(rate.cost(60'000'000'000'000ull),
              0.033 * 1000 + 0.0324 * 49000 + 0.031 * 10000, 1e-3);
}

TEST(TieredRate, ExactTierBoundary) {
  const auto rate = s3_style_storage();
  EXPECT_NEAR(rate.cost(1'000'000'000'000ull), 0.033 * 1000, 1e-9);
}

TEST(TieredRate, ZeroBytes) {
  EXPECT_DOUBLE_EQ(s3_style_storage().cost(0), 0.0);
}

TEST(PriceSchedule, TieredStorageOverridesFlat) {
  PriceSchedule p;
  p.storage_gb_month = 999.0;  // must be ignored once tiers are set
  p.storage_tiers = s3_style_storage();
  EXPECT_NEAR(p.storage_cost(1'000'000'000ull), 0.033, 1e-9);
}

TEST(PriceSchedule, TieredEgressOverridesFlat) {
  PriceSchedule p;
  p.data_out_gb = 999.0;
  p.egress_tiers = TieredRate({{TieredRate::kUnbounded, 0.1}});
  EXPECT_NEAR(p.egress_cost(2'000'000'000ull), 0.2, 1e-9);
}

TEST(BillingMeter, TieredScheduleFlowsThroughBills) {
  PriceSchedule p;
  p.storage_tiers = TieredRate({
      {1'000'000'000ull, 0.10},  // first GB at $0.10
      {TieredRate::kUnbounded, 0.01},
  });
  BillingMeter meter(p);
  auto bill = meter.close_month(3'000'000'000ull);  // 1 GB + 2 GB
  EXPECT_NEAR(bill.storage_cost, 0.10 + 0.02, 1e-9);
}

}  // namespace
}  // namespace hyrd::cloud
