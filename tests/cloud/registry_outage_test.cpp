#include <gtest/gtest.h>

#include "cloud/outage.h"
#include "cloud/profiles.h"
#include "cloud/registry.h"

namespace hyrd::cloud {
namespace {

TEST(CloudRegistry, InstallStandardFour) {
  CloudRegistry reg;
  install_standard_four(reg, 1);
  EXPECT_EQ(reg.size(), 4u);
  EXPECT_NE(reg.find("AmazonS3"), nullptr);
  EXPECT_NE(reg.find("WindowsAzure"), nullptr);
  EXPECT_NE(reg.find("Aliyun"), nullptr);
  EXPECT_NE(reg.find("Rackspace"), nullptr);
  EXPECT_EQ(reg.find("Nimbus"), nullptr);
}

TEST(CloudRegistry, OnlineFiltering) {
  CloudRegistry reg;
  install_standard_four(reg, 1);
  EXPECT_EQ(reg.online().size(), 4u);
  reg.find("AmazonS3")->set_online(false);
  EXPECT_EQ(reg.online().size(), 3u);
}

TEST(CloudRegistry, DeclaredCategoryQueries) {
  CloudRegistry reg;
  install_standard_four(reg, 1);
  const auto perf = reg.by_declared_category(/*performance=*/true, false);
  ASSERT_EQ(perf.size(), 2u);  // Azure + Aliyun
  const auto cost = reg.by_declared_category(false, /*cost=*/true);
  EXPECT_EQ(cost.size(), 3u);  // S3 + Aliyun + Rackspace
}

TEST(CloudRegistry, CumulativeCostAggregates) {
  CloudRegistry reg;
  install_standard_four(reg, 1);
  auto* s3 = reg.find("AmazonS3");
  s3->create("c");
  s3->put({"c", "k"}, common::Bytes(1'000'000'000ull, 0));
  reg.close_month_all();
  EXPECT_NEAR(reg.cumulative_cost(), 0.033 + 0.047 / 1e4 * 2, 1e-9);
}

TEST(OutageController, TakeDownAndRestore) {
  CloudRegistry reg;
  install_standard_four(reg, 1);
  OutageController ctl(reg);

  EXPECT_TRUE(ctl.take_down("WindowsAzure"));
  EXPECT_FALSE(reg.find("WindowsAzure")->online());
  EXPECT_EQ(ctl.offline_providers(),
            std::vector<std::string>{"WindowsAzure"});

  EXPECT_TRUE(ctl.restore("WindowsAzure"));
  EXPECT_TRUE(reg.find("WindowsAzure")->online());
  EXPECT_TRUE(ctl.offline_providers().empty());
}

TEST(OutageController, UnknownProviderReturnsFalse) {
  CloudRegistry reg;
  OutageController ctl(reg);
  EXPECT_FALSE(ctl.take_down("nope"));
  EXPECT_FALSE(ctl.restore("nope"));
  EXPECT_FALSE(ctl.destroy("nope"));
}

TEST(OutageController, DestroyWipes) {
  CloudRegistry reg;
  install_standard_four(reg, 1);
  auto* ali = reg.find("Aliyun");
  ali->create("c");
  ali->put({"c", "k"}, common::bytes_of("v"));
  OutageController ctl(reg);
  ASSERT_TRUE(ctl.destroy("Aliyun"));
  // The store is wiped and the provider is gone for good: neither a
  // direct set_online(true) nor a controller restore can bring it back.
  EXPECT_FALSE(ali->set_online(true));
  EXPECT_FALSE(ctl.restore("Aliyun"));
  EXPECT_FALSE(ali->online());
  EXPECT_EQ(ali->get({"c", "k"}).status.code(),
            common::StatusCode::kUnavailable);
}

TEST(RandomOutageInjector, NeverResurrectsDestroyedProvider) {
  CloudRegistry reg;
  install_standard_four(reg, 1);
  OutageController ctl(reg);
  ASSERT_TRUE(ctl.destroy("Rackspace"));
  // p_up = 1.0: every down provider recovers on every step — except the
  // destroyed one, which is out of the churn pool for good.
  RandomOutageInjector injector(reg, /*seed=*/7, /*p_down=*/0.5,
                                /*p_up=*/1.0, /*min_online=*/1);
  for (int i = 0; i < 50; ++i) {
    injector.step();
    EXPECT_FALSE(reg.find("Rackspace")->online());
  }
  EXPECT_TRUE(reg.find("Rackspace")->permanently_failed());
}

TEST(RandomOutageInjector, RespectsMinOnline) {
  CloudRegistry reg;
  install_standard_four(reg, 1);
  RandomOutageInjector injector(reg, /*seed=*/7, /*p_down=*/0.9,
                                /*p_up=*/0.0, /*min_online=*/3);
  for (int i = 0; i < 50; ++i) {
    injector.step();
    EXPECT_GE(reg.online().size(), 3u);
  }
}

TEST(RandomOutageInjector, EventuallyRecovers) {
  CloudRegistry reg;
  install_standard_four(reg, 1);
  reg.find("AmazonS3")->set_online(false);
  RandomOutageInjector injector(reg, 11, /*p_down=*/0.0, /*p_up=*/0.5, 0);
  for (int i = 0; i < 100 && reg.online().size() < 4; ++i) injector.step();
  EXPECT_EQ(reg.online().size(), 4u);
}

TEST(RandomOutageInjector, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    CloudRegistry reg;
    install_standard_four(reg, 1);
    RandomOutageInjector injector(reg, seed, 0.3, 0.3, 1);
    std::vector<std::string> events;
    for (int i = 0; i < 30; ++i) {
      for (auto& e : injector.step()) events.push_back(e);
    }
    return events;
  };
  EXPECT_EQ(run(99), run(99));
}

}  // namespace
}  // namespace hyrd::cloud
