#include "cloud/memory_store.h"

#include <gtest/gtest.h>

#include <thread>

namespace hyrd::cloud {
namespace {

using common::bytes_of;
using common::StatusCode;

TEST(MemoryStore, CreateThenPutGet) {
  MemoryStore store;
  ASSERT_TRUE(store.create("c").is_ok());
  ASSERT_TRUE(store.put("c", "k", bytes_of("v")).is_ok());
  auto got = store.get("c", "k");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(common::to_string(got.value()), "v");
}

TEST(MemoryStore, DuplicateCreateFails) {
  MemoryStore store;
  ASSERT_TRUE(store.create("c").is_ok());
  EXPECT_EQ(store.create("c").code(), StatusCode::kAlreadyExists);
}

TEST(MemoryStore, PutToMissingContainerFails) {
  MemoryStore store;
  EXPECT_EQ(store.put("nope", "k", bytes_of("v")).code(),
            StatusCode::kNotFound);
}

TEST(MemoryStore, GetMissingObjectFails) {
  MemoryStore store;
  store.create("c");
  EXPECT_EQ(store.get("c", "k").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.get("d", "k").status().code(), StatusCode::kNotFound);
}

TEST(MemoryStore, OverwriteUpdatesStoredBytes) {
  MemoryStore store;
  store.create("c");
  store.put("c", "k", common::Bytes(100, 1));
  EXPECT_EQ(store.stored_bytes(), 100u);
  store.put("c", "k", common::Bytes(40, 2));
  EXPECT_EQ(store.stored_bytes(), 40u);
  EXPECT_EQ(store.object_count(), 1u);
}

TEST(MemoryStore, RemoveFreesBytes) {
  MemoryStore store;
  store.create("c");
  store.put("c", "a", common::Bytes(10, 0));
  store.put("c", "b", common::Bytes(20, 0));
  ASSERT_TRUE(store.remove("c", "a").is_ok());
  EXPECT_EQ(store.stored_bytes(), 20u);
  EXPECT_EQ(store.remove("c", "a").code(), StatusCode::kNotFound);
}

TEST(MemoryStore, ListReturnsSortedNames) {
  MemoryStore store;
  store.create("c");
  store.put("c", "zebra", bytes_of("1"));
  store.put("c", "apple", bytes_of("2"));
  auto names = store.list("c");
  ASSERT_TRUE(names.is_ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"apple", "zebra"}));
}

TEST(MemoryStore, ListMissingContainerFails) {
  MemoryStore store;
  EXPECT_FALSE(store.list("c").is_ok());
}

TEST(MemoryStore, ObjectSizePeek) {
  MemoryStore store;
  store.create("c");
  store.put("c", "k", common::Bytes(33, 0));
  EXPECT_EQ(store.object_size("c", "k"), std::optional<std::uint64_t>(33));
  EXPECT_EQ(store.object_size("c", "missing"), std::nullopt);
}

TEST(MemoryStore, WipeClearsEverything) {
  MemoryStore store;
  store.create("c");
  store.put("c", "k", common::Bytes(10, 0));
  store.wipe();
  EXPECT_EQ(store.stored_bytes(), 0u);
  EXPECT_EQ(store.object_count(), 0u);
  EXPECT_FALSE(store.container_exists("c"));
}

TEST(MemoryStore, ConcurrentPutsAreConsistent) {
  MemoryStore store;
  store.create("c");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 100; ++i) {
        store.put("c", "t" + std::to_string(t) + "-" + std::to_string(i),
                  common::Bytes(10, 0));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.object_count(), 800u);
  EXPECT_EQ(store.stored_bytes(), 8000u);
}

}  // namespace
}  // namespace hyrd::cloud
