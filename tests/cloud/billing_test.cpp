#include "cloud/billing.h"

#include <gtest/gtest.h>

namespace hyrd::cloud {
namespace {

PriceSchedule test_prices() {
  return PriceSchedule{
      .storage_gb_month = 0.10,
      .data_in_gb = 0.01,
      .data_out_gb = 0.20,
      .put_class_per_10k = 0.05,
      .get_class_per_10k = 0.004,
  };
}

TEST(BillingMeter, EmptyMonthBillsStorageOnly) {
  BillingMeter meter(test_prices());
  auto bill = meter.close_month(2'000'000'000ull);  // 2 GB resident
  EXPECT_DOUBLE_EQ(bill.storage_cost, 0.20);
  EXPECT_DOUBLE_EQ(bill.total(), 0.20);
  EXPECT_EQ(bill.month, 0);
}

TEST(BillingMeter, RecordsPutAsIngressAndPutTxn) {
  BillingMeter meter(test_prices());
  meter.record(OpKind::kPut, 1'000'000'000ull);
  auto bill = meter.close_month(0);
  EXPECT_DOUBLE_EQ(bill.ingress_cost, 0.01);
  EXPECT_EQ(bill.put_class_txns, 1u);
  EXPECT_EQ(bill.bytes_in, 1'000'000'000ull);
}

TEST(BillingMeter, RecordsGetAsEgressAndGetTxn) {
  BillingMeter meter(test_prices());
  meter.record(OpKind::kGet, 500'000'000ull);
  auto bill = meter.close_month(0);
  EXPECT_DOUBLE_EQ(bill.egress_cost, 0.10);
  EXPECT_EQ(bill.get_class_txns, 1u);
}

TEST(BillingMeter, ListCreateBilledAsPutClass) {
  BillingMeter meter(test_prices());
  meter.record(OpKind::kList, 0);
  meter.record(OpKind::kCreate, 0);
  meter.record(OpKind::kRemove, 0);
  auto bill = meter.close_month(0);
  EXPECT_EQ(bill.put_class_txns, 2u);
  EXPECT_EQ(bill.get_class_txns, 1u);
}

TEST(BillingMeter, TxnCostScalesPer10K) {
  BillingMeter meter(test_prices());
  for (int i = 0; i < 20000; ++i) meter.record(OpKind::kPut, 0);
  auto bill = meter.close_month(0);
  EXPECT_DOUBLE_EQ(bill.txn_cost, 0.10);  // 20K puts = 2 * $0.05
}

TEST(BillingMeter, MonthCloseResetsAccumulators) {
  BillingMeter meter(test_prices());
  meter.record(OpKind::kGet, 1'000'000'000ull);
  meter.close_month(0);
  auto second = meter.close_month(0);
  EXPECT_DOUBLE_EQ(second.egress_cost, 0.0);
  EXPECT_EQ(second.month, 1);
}

TEST(BillingMeter, CumulativeAccumulatesStorageEachMonth) {
  BillingMeter meter(test_prices());
  // The Fig. 4 property: each month re-bills all resident data, so
  // cumulative storage cost grows superlinearly with steady ingest.
  for (int m = 1; m <= 3; ++m) {
    meter.close_month(static_cast<std::uint64_t>(m) * 1'000'000'000ull);
  }
  // 0.1 + 0.2 + 0.3 = 0.6
  EXPECT_NEAR(meter.cumulative_cost(), 0.6, 1e-12);
  EXPECT_EQ(meter.bills().size(), 3u);
}

TEST(BillingMeter, OpenMonthTransferCostVisible) {
  BillingMeter meter(test_prices());
  meter.record(OpKind::kGet, 1'000'000'000ull);
  EXPECT_DOUBLE_EQ(meter.open_month_transfer_cost(), 0.20 + 0.004 / 1e4 * 1);
}

TEST(BillingMeter, ResetDropsEverything) {
  BillingMeter meter(test_prices());
  meter.record(OpKind::kPut, 100);
  meter.close_month(100);
  meter.reset();
  EXPECT_TRUE(meter.bills().empty());
  EXPECT_DOUBLE_EQ(meter.cumulative_cost(), 0.0);
  EXPECT_DOUBLE_EQ(meter.open_month_transfer_cost(), 0.0);
}

}  // namespace
}  // namespace hyrd::cloud
