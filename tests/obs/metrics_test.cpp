#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/copy_meter.h"
#include "common/stats.h"

namespace hyrd::obs {
namespace {

TEST(ObsMetrics, CounterRegistersOnceAndSums) {
  MetricsRegistry reg;
  Counter a = reg.counter("test.counter");
  Counter b = reg.counter("test.counter");  // same state, second handle
  a.add(3);
  b.inc();
  if (kMetricsEnabled) {
    EXPECT_EQ(a.value(), 4u);
    EXPECT_EQ(b.value(), 4u);
  } else {
    EXPECT_EQ(a.value(), 0u);  // compiled out: updates are no-ops
  }
}

TEST(ObsMetrics, DefaultConstructedHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add(7);
  g.add(-2);
  h.record(1.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().total(), 0u);
}

TEST(ObsMetrics, GaugeNetsAcrossHandles) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry reg;
  Gauge g = reg.gauge("test.inflight");
  g.add(10);
  g.dec();
  g.dec();
  EXPECT_EQ(g.value(), 8);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsMetrics, ConcurrentCountersSumExactly) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry reg;
  Counter c = reg.counter("test.concurrent");
  Gauge g = reg.gauge("test.concurrent_gauge");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &g] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        g.inc();
        g.dec();
      }
    });
  }
  for (auto& th : threads) th.join();
  // Relaxed atomics, but exact once writers have quiesced.
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsMetrics, HistogramSnapshotMatchesSingleStreamLogHistogram) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry reg;
  Histogram h = reg.histogram("test.latency", 0.1, 1.25, 120);
  common::LogHistogram reference(0.1, 1.25, 120);
  std::mt19937_64 rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double x = static_cast<double>(rng() % 1'000'000) / 50.0;
    h.record(x);
    reference.add(x);
  }
  const common::LogHistogram snap = h.snapshot();
  EXPECT_EQ(snap.total(), reference.total());
  EXPECT_EQ(snap.counts(), reference.counts());
  for (double p : {50.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(snap.percentile(p), reference.percentile(p));
  }
}

TEST(ObsMetrics, ConcurrentHistogramShardsMergeToSingleStream) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry reg;
  Histogram h = reg.histogram("test.sharded", 0.1, 1.25, 120);
  // Values are a fixed multiset regardless of thread interleaving, so the
  // merged shard counts must equal the single-stream histogram of the same
  // multiset — the merge()-equals-single-stream contract under real races.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  common::LogHistogram reference(0.1, 1.25, 120);
  for (int t = 0; t < kThreads; ++t) {
    std::mt19937_64 rng(100 + t);
    for (int i = 0; i < kPerThread; ++i) {
      reference.add(static_cast<double>(rng() % 1'000'000) / 50.0);
    }
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      std::mt19937_64 rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>(rng() % 1'000'000) / 50.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  const common::LogHistogram snap = h.snapshot();
  EXPECT_EQ(snap.total(), reference.total());
  EXPECT_EQ(snap.counts(), reference.counts());
}

TEST(ObsMetrics, SnapshotAndJsonAreNameSorted) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.gauge("m.mid").add(-3);
  reg.histogram("h.lat", 1.0, 2.0, 8).record(3.0);
  const MetricsRegistry::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a.first"), 2u);
  EXPECT_EQ(snap.counters.at("z.last"), 1u);
  EXPECT_EQ(snap.gauges.at("m.mid"), -3);
  EXPECT_EQ(snap.histograms.at("h.lat").total(), 1u);

  const std::string json = reg.to_json();
  const auto a = json.find("a.first");
  const auto z = json.find("z.last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);  // sorted keys -> deterministic serialization
  EXPECT_NE(json.find("\"histograms\":{\"h.lat\":{\"total\":1"),
            std::string::npos);
}

TEST(ObsMetrics, ResetZeroesEverything) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry reg;
  Counter c = reg.counter("r.c");
  Histogram h = reg.histogram("r.h", 1.0, 2.0, 8);
  c.add(9);
  h.record(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().total(), 0u);
}

// The copy-meter satellite: memcpy accounting now flows through the global
// registry under the standard name, not a parallel mechanism.
TEST(ObsMetrics, CopyMeterIsARegistryCounter) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  common::reset_copied_bytes();
  common::count_copied_bytes(123);
  common::count_copied_bytes(77);
  EXPECT_EQ(common::copied_bytes(), 200u);
  const auto snap = MetricsRegistry::global().snapshot();
  ASSERT_TRUE(snap.counters.count("common.bytes_copied"));
  EXPECT_EQ(snap.counters.at("common.bytes_copied"), 200u);
  common::reset_copied_bytes();
  EXPECT_EQ(common::copied_bytes(), 0u);
}

}  // namespace
}  // namespace hyrd::obs
