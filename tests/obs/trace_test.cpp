#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"

namespace hyrd::obs {
namespace {

TraceSpan make_span(const char* name, std::uint64_t tid,
                    common::SimDuration ts, common::SimDuration dur) {
  TraceSpan span;
  span.name = name;
  span.cat = "test";
  span.tid = tid;
  span.ts = ts;
  span.dur = dur;
  return span;
}

TEST(ObsTrace, InactiveByDefaultAndEmitIsDropped) {
  ASSERT_FALSE(trace_active());
  emit(make_span("dropped", 1, 0, 0));  // must be a safe no-op
  ASSERT_FALSE(trace_active());
}

TEST(ObsTrace, ScopeInstallsAndRestores) {
  TraceRecorder recorder;
  {
    TraceScope scope(&recorder);
    EXPECT_TRUE(trace_active());
    emit(make_span("inside", 7, 1000, 500));
  }
  EXPECT_FALSE(trace_active());
  emit(make_span("outside", 7, 2000, 500));  // after scope: dropped
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_STREQ(recorder.spans()[0].name, "inside");
}

TEST(ObsTrace, NestedScopesInnerWinsOuterRestored) {
  TraceRecorder outer;
  TraceRecorder inner;
  TraceScope outer_scope(&outer);
  emit(make_span("to_outer", 1, 0, 0));
  {
    TraceScope inner_scope(&inner);
    emit(make_span("to_inner", 1, 0, 0));
  }
  emit(make_span("to_outer_again", 1, 0, 0));
  EXPECT_EQ(outer.size(), 2u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_STREQ(inner.spans()[0].name, "to_inner");
}

TEST(ObsTrace, ArgsCapAtFour) {
  TraceSpan span = make_span("argful", 1, 0, 0);
  span.arg("a", 1).arg("b", 2).arg("c", 3).arg("d", 4).arg("e", 5);
  EXPECT_EQ(span.arg_count, 4u);
  EXPECT_STREQ(span.args[3].key, "d");
}

TEST(ObsTrace, TidFilterKeepsOnlyMatchingSpans) {
  TraceRecorder recorder;
  recorder.set_tid_filter(42);
  recorder.record(make_span("mine", 42, 0, 1));
  recorder.record(make_span("other", 7, 0, 1));
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.spans()[0].tid, 42u);
  recorder.clear_tid_filter();
  recorder.record(make_span("other", 7, 0, 1));
  EXPECT_EQ(recorder.size(), 2u);
}

TEST(ObsTrace, DefaultPidStampsOnlyUnsetSpans) {
  TraceRecorder recorder;
  recorder.set_default_pid(9);
  TraceSpan explicit_pid = make_span("explicit", 1, 0, 0);
  explicit_pid.pid = 3;
  recorder.record(explicit_pid);
  recorder.record(make_span("defaulted", 1, 0, 0));
  const auto spans = recorder.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].pid, 3u);
  EXPECT_EQ(spans[1].pid, 9u);
}

TEST(ObsTrace, ChromeJsonShape) {
  TraceRecorder recorder;
  TraceSpan span = make_span("Put", 5, 1'500, 2'000);  // ns -> 1.5us / 2us
  span.cat = "cloud";
  span.arg("attempts", 2).arg("bytes", 4096);
  span.detail = "AmazonS3";
  recorder.record(span);
  const std::string json = recorder.to_chrome_json();
  EXPECT_EQ(
      json,
      "{\"traceEvents\":[{\"name\":\"Put\",\"cat\":\"cloud\",\"ph\":\"X\","
      "\"pid\":1,\"tid\":5,\"ts\":1.500,\"dur\":2.000,"
      "\"args\":{\"attempts\":2,\"bytes\":4096,\"what\":\"AmazonS3\"}}]}");
}

TEST(ObsTrace, ChromeJsonEscapesDetail) {
  TraceRecorder recorder;
  TraceSpan span = make_span("weird", 1, 0, 0);
  span.detail = "quote\" slash\\ newline\n tab\t";
  recorder.record(span);
  const std::string json = recorder.to_chrome_json();
  EXPECT_NE(json.find("quote\\\" slash\\\\ newline\\n tab\\t"),
            std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // no raw control chars
}

TEST(ObsTrace, ChromeJsonIsByteStableForIdenticalStreams) {
  auto build = [] {
    TraceRecorder recorder;
    for (int i = 0; i < 50; ++i) {
      TraceSpan span = make_span("op", static_cast<std::uint64_t>(i % 4),
                                 i * 1000, 750);
      span.arg("i", i);
      recorder.record(span);
    }
    return recorder.to_chrome_json();
  };
  EXPECT_EQ(build(), build());
}

TEST(ObsTrace, ClearEmptiesRecorder) {
  TraceRecorder recorder;
  recorder.record(make_span("a", 1, 0, 0));
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.to_chrome_json(), "{\"traceEvents\":[]}");
}

}  // namespace
}  // namespace hyrd::obs
