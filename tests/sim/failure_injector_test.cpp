// Event-driven failure injection (sim/failure.h): outage onset/restore as
// queue events, brownout latency scaling, permanent loss that nothing can
// undo, the applied-transition log, and seeded random churn.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cloud/profiles.h"
#include "cloud/registry.h"
#include "common/clock.h"
#include "sim/event_queue.h"
#include "sim/failure.h"

namespace hyrd::sim {
namespace {

constexpr common::SimDuration kS = common::kSecond;

class FailureInjectorTest : public ::testing::Test {
 protected:
  FailureInjectorTest() { cloud::install_standard_four(registry_, 42); }

  cloud::CloudRegistry registry_;
  EventQueue queue_;
};

// A probe that samples provider state at a chosen virtual instant, so the
// test observes the fleet *between* injector events.
struct Probe final : EventHandler {
  cloud::CloudRegistry* registry = nullptr;
  std::vector<std::string> online_at_fire;
  void on_event(EventQueue&, common::SimDuration) override {
    for (const auto& p : registry->all()) {
      if (p->online()) online_at_fire.push_back(p->name());
    }
  }
};

TEST_F(FailureInjectorTest, CorrelatedOutageFlipsSetTogetherAndRestores) {
  FailureInjector injector(registry_, queue_);
  injector.schedule_outage({"WindowsAzure", "Aliyun"}, 5 * kS, 3 * kS);

  Probe during;
  during.registry = &registry_;
  queue_.schedule_at(6 * kS, &during);

  queue_.run();

  // Mid-outage both named providers were down, the others untouched.
  EXPECT_EQ(during.online_at_fire,
            (std::vector<std::string>{"AmazonS3", "Rackspace"}));
  // After the end event everything is back.
  for (const auto& p : registry_.all()) EXPECT_TRUE(p->online());

  ASSERT_EQ(injector.log().size(), 4u);  // 2 onsets + 2 restores
  EXPECT_EQ(injector.log()[0].at, 5 * kS);
  EXPECT_TRUE(injector.log()[0].onset);
  EXPECT_EQ(injector.log()[2].at, 8 * kS);
  EXPECT_FALSE(injector.log()[2].onset);
  EXPECT_EQ(injector.last_transient_end(), 8 * kS);
}

TEST_F(FailureInjectorTest, BrownoutScalesLatencyThenRecovers) {
  FailureInjector injector(registry_, queue_);
  injector.schedule_brownout({"AmazonS3"}, 2 * kS, 4 * kS, /*scale=*/8.0);

  cloud::SimProvider* s3 = registry_.find("AmazonS3");
  ASSERT_NE(s3, nullptr);
  EXPECT_EQ(s3->latency_scale(), 1.0);

  // Run up to the onset, sample, then drain.
  while (queue_.now() < 2 * kS && queue_.step()) {
  }
  EXPECT_EQ(s3->latency_scale(), 8.0);
  EXPECT_TRUE(s3->online());  // slow, not dead
  queue_.run();
  EXPECT_EQ(s3->latency_scale(), 1.0);
  EXPECT_EQ(injector.last_transient_end(), 6 * kS);
}

TEST_F(FailureInjectorTest, PermanentLossIsForever) {
  FailureInjector injector(registry_, queue_);
  injector.schedule_permanent_loss("Rackspace", 1 * kS);
  // An outage of the same provider whose restore fires *after* the loss
  // must not resurrect it.
  injector.schedule_outage({"Rackspace"}, 0, 4 * kS);
  queue_.run();

  cloud::SimProvider* rs = registry_.find("Rackspace");
  EXPECT_TRUE(rs->permanently_failed());
  EXPECT_FALSE(rs->online());
  EXPECT_FALSE(rs->set_online(true));

  // The refused restore is not logged as an applied transition.
  for (const auto& entry : injector.log()) {
    EXPECT_FALSE(entry.provider == "Rackspace" &&
                 entry.kind == FailureKind::kOutage && !entry.onset);
  }
}

TEST_F(FailureInjectorTest, RestoreListenerFiresAtOutageEnd) {
  FailureInjector injector(registry_, queue_);
  std::vector<std::pair<std::string, common::SimDuration>> restored;
  injector.set_restore_listener(
      [&](const std::string& name, common::SimDuration at) {
        restored.emplace_back(name, at);
      });
  injector.schedule_outage({"Aliyun"}, 3 * kS, 2 * kS);
  injector.schedule_permanent_loss("Rackspace", 1 * kS);  // no restore event
  queue_.run();

  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0].first, "Aliyun");
  EXPECT_EQ(restored[0].second, 5 * kS);
}

TEST_F(FailureInjectorTest, RandomChurnIsSeededAndSkipsDestroyed) {
  registry_.find("Rackspace")->fail_permanently();

  FailureInjector injector(registry_, queue_);
  injector.schedule_random_churn(/*seed=*/7, /*epochs=*/200,
                                 /*epoch_length=*/kS, /*p_down=*/0.2,
                                 /*p_up=*/0.5, /*min_online=*/1);
  queue_.run();

  // Some churn actually happened, and only to resurrectable providers.
  EXPECT_FALSE(injector.log().empty());
  for (const auto& entry : injector.log()) {
    EXPECT_NE(entry.provider, "Rackspace");
  }
  // After the horizon every non-destroyed provider is back online.
  for (const auto& p : registry_.all()) {
    EXPECT_EQ(p->online(), !p->permanently_failed()) << p->name();
  }
  EXPECT_FALSE(registry_.find("Rackspace")->online());

  // Same seed, fresh fleet: the identical schedule (determinism contract).
  cloud::CloudRegistry registry2;
  cloud::install_standard_four(registry2, 42);
  registry2.find("Rackspace")->fail_permanently();
  EventQueue queue2;
  FailureInjector injector2(registry2, queue2);
  injector2.schedule_random_churn(7, 200, kS, 0.2, 0.5, 1);
  queue2.run();
  ASSERT_EQ(injector2.log().size(), injector.log().size());
  for (std::size_t i = 0; i < injector.log().size(); ++i) {
    EXPECT_EQ(injector2.log()[i].at, injector.log()[i].at);
    EXPECT_EQ(injector2.log()[i].provider, injector.log()[i].provider);
    EXPECT_EQ(injector2.log()[i].onset, injector.log()[i].onset);
  }
}

TEST_F(FailureInjectorTest, KindNames) {
  EXPECT_EQ(failure_kind_name(FailureKind::kOutage), "outage");
  EXPECT_EQ(failure_kind_name(FailureKind::kBrownout), "brownout");
  EXPECT_EQ(failure_kind_name(FailureKind::kPermanentLoss), "permanent_loss");
}

}  // namespace
}  // namespace hyrd::sim
