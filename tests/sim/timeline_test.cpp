// Flight-recorder timeline contract: the sampler's windowed rows reconcile
// exactly with end-of-run totals, the E4 campaign's failure phases are
// visible in the series (not just in aggregates), the recovery-time reader
// behaves at its edges, and both the timeline and the per-op trace are
// byte-identical across same-seed runs.
#include "sim/timeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/scaleout.h"

namespace hyrd::sim {
namespace {

std::size_t provider_index(const std::vector<std::string>& providers,
                           const std::string& name) {
  const auto it = std::find(providers.begin(), providers.end(), name);
  EXPECT_NE(it, providers.end()) << name;
  return static_cast<std::size_t>(it - providers.begin());
}

TimelineRow row_at(double t_vs, double goodput) {
  TimelineRow r;
  r.t_vs = t_vs;
  r.goodput_ops_per_vs = goodput;
  return r;
}

TEST(Timeline, DisabledByDefaultProducesNoRows) {
  ScaleoutConfig config;
  config.scheme = "HyRD";
  config.tenants = 20;
  config.seed = 1;
  const ScaleoutReport r = run_scaleout(config);
  EXPECT_GT(r.ops_ok, 0u);
  EXPECT_TRUE(r.timeline.empty());
  EXPECT_TRUE(r.timeline_providers.empty());
}

TEST(Timeline, WindowDeltasSumToRunTotals) {
  // The sampler keeps ticking until the last tenant finishes, so every op
  // falls in some closed window: the series is a lossless decomposition of
  // the cumulative counters.
  const ScaleoutReport r =
      run_scaleout(standard_campaign_config("HyRD", 300, 42));
  ASSERT_FALSE(r.timeline.empty());
  ASSERT_EQ(r.timeline_providers.size(), 4u);
  std::uint64_t ok = 0, failed = 0, retries = 0, throttled = 0;
  for (const TimelineRow& row : r.timeline) {
    ok += row.ops_ok_w;
    failed += row.ops_failed_w;
    retries += row.retries_w;
    throttled += row.throttled_w;
    ASSERT_EQ(row.provider_queue_depth.size(), r.timeline_providers.size());
    ASSERT_EQ(row.provider_online.size(), r.timeline_providers.size());
    ASSERT_EQ(row.provider_throttled_w.size(), r.timeline_providers.size());
    // throttled_w is defined as the sum of the per-provider deltas.
    const std::uint64_t per_provider =
        std::accumulate(row.provider_throttled_w.begin(),
                        row.provider_throttled_w.end(), std::uint64_t{0});
    ASSERT_EQ(row.throttled_w, per_provider);
  }
  EXPECT_EQ(ok, r.ops_ok);
  EXPECT_EQ(failed, r.ops_failed);
  EXPECT_EQ(retries, r.retries);
  EXPECT_EQ(throttled, r.provider_throttled);
  // The final resolved op is inside the last window: nothing is in flight.
  EXPECT_EQ(r.timeline.back().in_flight, 0u);
}

TEST(Timeline, CampaignPhasesAreVisibleInTheSeries) {
  // standard_campaign_config scripts: correlated outage of WindowsAzure +
  // Aliyun over [12s, 20s), AmazonS3 brownout over [24s, 32s), Aliyun
  // destroyed at 36s. End-of-run aggregates can't show any of this; the
  // timeline must.
  const ScaleoutReport r =
      run_scaleout(standard_campaign_config("HyRD", 300, 42));
  ASSERT_EQ(r.failure_events, 7u) << "run ended before the campaign did";
  const std::size_t azure = provider_index(r.timeline_providers,
                                           "WindowsAzure");
  const std::size_t aliyun = provider_index(r.timeline_providers, "Aliyun");

  bool outage_seen = false;
  bool loss_seen = false;
  double outage_min_goodput = 1e18;
  double pre_outage_sum = 0;
  std::size_t pre_outage_n = 0;
  for (const TimelineRow& row : r.timeline) {
    if (row.t_vs >= 10.0 && row.t_vs < 12.0) {
      pre_outage_sum += row.goodput_ops_per_vs;
      ++pre_outage_n;
      // Steady state before the campaign fires: everything online.
      EXPECT_EQ(row.provider_online[azure], 1);
      EXPECT_EQ(row.provider_online[aliyun], 1);
    }
    if (row.t_vs > 12.5 && row.t_vs < 20.0) {
      outage_seen = true;
      EXPECT_EQ(row.provider_online[azure], 0) << "t=" << row.t_vs;
      EXPECT_EQ(row.provider_online[aliyun], 0) << "t=" << row.t_vs;
      outage_min_goodput =
          std::min(outage_min_goodput, row.goodput_ops_per_vs);
    }
    if (row.t_vs > 36.5) {
      loss_seen = true;
      EXPECT_EQ(row.provider_online[aliyun], 0) << "t=" << row.t_vs;
      EXPECT_EQ(row.provider_online[azure], 1) << "t=" << row.t_vs;
    }
  }
  ASSERT_TRUE(outage_seen);
  ASSERT_TRUE(loss_seen);
  ASSERT_GT(pre_outage_n, 0u);
  const double baseline = pre_outage_sum / static_cast<double>(pre_outage_n);
  ASSERT_GT(baseline, 0.0);
  // The trough: with both replica targets dark, goodput collapses.
  EXPECT_LT(outage_min_goodput, 0.5 * baseline);
  // And the recovery reader sees the fleet come back within the CI budget
  // the campaign bench asserts.
  const double recovery =
      timeline_recovery_seconds(r.timeline, 10.0, 12.0, 20.0, 0.9);
  EXPECT_GE(recovery, 0.0);
  EXPECT_LE(recovery, 10.0);
}

TEST(Timeline, RecoveryReaderEdgeCases) {
  // Healthy baseline, a dip, then sustained recovery at t=5: the reader
  // reports time-from-after_vs of the first sustained row.
  const std::vector<TimelineRow> recovers = {
      row_at(1, 100), row_at(2, 100), row_at(3, 0),  row_at(4, 0),
      row_at(5, 95),  row_at(6, 96),  row_at(7, 97),
  };
  EXPECT_DOUBLE_EQ(timeline_recovery_seconds(recovers, 1, 3, 4, 0.9), 1.0);

  // A one-row spike that immediately drops again is not recovery; the next
  // sustained row is.
  const std::vector<TimelineRow> spiky = {
      row_at(1, 100), row_at(2, 100), row_at(3, 0),  row_at(4, 0),
      row_at(5, 95),  row_at(6, 10),  row_at(7, 95), row_at(8, 95),
  };
  EXPECT_DOUBLE_EQ(timeline_recovery_seconds(spiky, 1, 3, 4, 0.9), 3.0);

  // The final row counts alone: a fleet that finishes healthy has recovered.
  const std::vector<TimelineRow> ends_healthy = {
      row_at(1, 100), row_at(2, 100), row_at(3, 0), row_at(4, 95),
  };
  EXPECT_DOUBLE_EQ(timeline_recovery_seconds(ends_healthy, 1, 3, 3.5, 0.9),
                   0.5);

  // Never recovers.
  const std::vector<TimelineRow> dead = {
      row_at(1, 100), row_at(2, 100), row_at(3, 0), row_at(4, 0),
  };
  EXPECT_DOUBLE_EQ(timeline_recovery_seconds(dead, 1, 3, 3, 0.9), -1.0);

  // Degenerate inputs: empty baseline window, all-zero baseline.
  EXPECT_DOUBLE_EQ(timeline_recovery_seconds(recovers, 8, 9, 4, 0.9), -1.0);
  const std::vector<TimelineRow> zero_base = {row_at(1, 0), row_at(2, 0),
                                              row_at(3, 50)};
  EXPECT_DOUBLE_EQ(timeline_recovery_seconds(zero_base, 1, 3, 2, 0.9), -1.0);
  EXPECT_DOUBLE_EQ(timeline_recovery_seconds({}, 0, 1, 0, 0.9), -1.0);
}

TEST(Timeline, JsonHasFixedShape) {
  TimelineRow row = row_at(0.25, 48.0);
  row.ops_ok_w = 12;
  row.retries_w = 3;
  row.throttled_w = 2;
  row.in_flight = 7;
  row.provider_queue_depth = {4, 0};
  row.provider_online = {1, 0};
  row.provider_throttled_w = {2, 0};
  const std::string json =
      timeline_to_json({row}, {"AmazonS3", "Aliyun"}, 0.25);
  EXPECT_NE(json.find("\"interval_vs\":0.250000"), std::string::npos);
  EXPECT_NE(json.find("\"providers\":[\"AmazonS3\",\"Aliyun\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"t_vs\":0.250000"), std::string::npos);
  EXPECT_NE(json.find("\"ops_ok_w\":12"), std::string::npos);
  EXPECT_NE(json.find("\"provider_online\":[1,0]"), std::string::npos);
  EXPECT_NE(json.find("\"provider_throttled\":[2,0]"), std::string::npos);
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find(",}"), std::string::npos);  // no dangling commas
  EXPECT_EQ(json.find(",]"), std::string::npos);
}

TEST(Timeline, SameSeedCampaignIsByteIdenticalIncludingTrace) {
  // The flight recorder extends the determinism contract: not just the
  // end-of-run report, but every sampled window and every recorded span.
  const auto capture = [](std::uint64_t seed) {
    ScaleoutConfig config = standard_campaign_config("HyRD", 120, seed);
    obs::TraceRecorder recorder;
    config.trace = &recorder;
    const ScaleoutReport r = run_scaleout(config);
    return std::pair<std::string, std::string>(
        timeline_to_json(r.timeline, r.timeline_providers,
                         r.timeline_interval_vs),
        recorder.to_chrome_json());
  };
  const auto a = capture(42);
  const auto b = capture(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second.size(), std::string("{\"traceEvents\":[]}").size());
  const auto c = capture(43);
  EXPECT_NE(a.first, c.first);
}

}  // namespace
}  // namespace hyrd::sim
