// Discrete-event core contracts: dispatch order (time, then submission),
// cooperative cancellation (including the CancelScope bridge into the
// provider layer), and virtual-time monotonicity.
#include <gtest/gtest.h>

#include <vector>

#include "cloud/cancel.h"
#include "common/clock.h"
#include "sim/event_queue.h"

namespace hyrd::sim {
namespace {

/// Appends its tag to a shared trace on every dispatch.
class Recorder final : public EventHandler {
 public:
  Recorder(int tag, std::vector<int>& trace) : tag_(tag), trace_(trace) {}
  void on_event(EventQueue&, common::SimDuration) override {
    trace_.push_back(tag_);
  }

 private:
  int tag_;
  std::vector<int>& trace_;
};

TEST(EventQueue, DispatchesInTimeOrder) {
  std::vector<int> trace;
  Recorder a(1, trace), b(2, trace), c(3, trace);
  EventQueue q;
  q.schedule_at(300, &c);
  q.schedule_at(100, &a);
  q.schedule_at(200, &b);
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 300);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.dispatched(), 3u);
}

TEST(EventQueue, EqualTimestampsDispatchInScheduleOrder) {
  // The stability contract the determinism test leans on: ties broken by
  // the monotone event id, i.e. submission order — never heap order.
  std::vector<int> trace;
  std::vector<Recorder> handlers;
  handlers.reserve(8);
  EventQueue q;
  for (int i = 0; i < 8; ++i) {
    handlers.emplace_back(i, trace);
    q.schedule_at(500, &handlers[i]);
  }
  q.run();
  EXPECT_EQ(trace, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, CancelledEventIsSkipped) {
  std::vector<int> trace;
  Recorder a(1, trace), b(2, trace);
  EventQueue q;
  const EventId ida = q.schedule_at(100, &a);
  q.schedule_at(200, &b);
  EXPECT_TRUE(q.cancel(ida));
  EXPECT_EQ(q.run(), 1u);  // only b dispatched
  EXPECT_EQ(trace, (std::vector<int>{2}));
  EXPECT_EQ(q.now(), 200);  // cancelled events don't advance the clock
}

TEST(EventQueue, CancelIsIdempotentAndRejectsUnknownOrDispatched) {
  std::vector<int> trace;
  Recorder a(1, trace);
  EventQueue q;
  const EventId id = q.schedule_at(50, &a);
  EXPECT_FALSE(q.cancel(kInvalidEvent));
  EXPECT_FALSE(q.cancel(id + 999));  // never issued
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  q.run();
  EXPECT_TRUE(trace.empty());

  const EventId id2 = q.schedule_at(60, &a);
  q.run();
  EXPECT_FALSE(q.cancel(id2));  // already dispatched
}

TEST(EventQueue, PastSchedulesClampToNowAndTimeIsMonotone) {
  struct Prober final : EventHandler {
    std::vector<common::SimDuration> seen;
    void on_event(EventQueue& q, common::SimDuration now) override {
      seen.push_back(now);
      if (seen.size() == 1) {
        q.schedule_at(now - 500, this);  // the past: must clamp to now
        q.schedule_in(-10, this);        // negative delay: same
      }
    }
  } p;
  EventQueue q;
  q.schedule_at(1000, &p);
  q.run();
  ASSERT_EQ(p.seen.size(), 3u);
  EXPECT_EQ(p.seen[0], 1000);
  EXPECT_EQ(p.seen[1], 1000);  // clamped, not 500
  EXPECT_EQ(p.seen[2], 1000);
  EXPECT_EQ(q.now(), 1000);
}

TEST(EventQueue, SelfReschedulingChainAdvancesVirtualTime) {
  // The tenant lifecycle shape: each dispatch schedules the next.
  struct Chain final : EventHandler {
    int steps = 0;
    void on_event(EventQueue& q, common::SimDuration now) override {
      if (++steps < 5) q.schedule_at(now + common::kMillisecond, this);
    }
  } chain;
  EventQueue q;
  q.schedule_at(0, &chain);
  EXPECT_EQ(q.run(), 5u);
  EXPECT_EQ(chain.steps, 5);
  EXPECT_EQ(q.now(), 4 * common::kMillisecond);
}

TEST(EventQueue, RunHonorsMaxEvents) {
  std::vector<int> trace;
  Recorder a(1, trace), b(2, trace), c(3, trace);
  EventQueue q;
  q.schedule_at(1, &a);
  q.schedule_at(2, &b);
  q.schedule_at(3, &c);
  EXPECT_EQ(q.run(2), 2u);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run(), 1u);
}

TEST(EventQueue, HandlerRunsUnderItsEventCancelScope) {
  // While a handler runs, its event's flag is the thread's CancelScope —
  // the same token SimProvider polls — and it reads "not cancelled" for a
  // normally dispatched event. Cancelling *another* pending event from
  // inside the handler must not disturb the installed scope.
  struct Prober final : EventHandler {
    EventId other = kInvalidEvent;
    bool saw_uncancelled = false;
    bool cancelled_other = false;
    void on_event(EventQueue& q, common::SimDuration) override {
      saw_uncancelled = !cloud::CancelScope::cancelled();
      if (other != kInvalidEvent) cancelled_other = q.cancel(other);
      saw_uncancelled = saw_uncancelled && !cloud::CancelScope::cancelled();
    }
  } p;
  std::vector<int> trace;
  Recorder victim(9, trace);
  EventQueue q;
  q.schedule_at(10, &p);
  p.other = q.schedule_at(20, &victim);
  q.run();
  EXPECT_TRUE(p.saw_uncancelled);
  EXPECT_TRUE(p.cancelled_other);
  EXPECT_TRUE(trace.empty());
  EXPECT_FALSE(cloud::CancelScope::cancelled());  // scope popped after run
}

}  // namespace
}  // namespace hyrd::sim
