// Regression test: HyRDClient::get must not hold hot_mu_ across provider
// I/O. The hot-copy read is a full-object remote get — serializing every
// other client-side hot-copy lookup behind it would turn the "fast path"
// into a convoy. The SimProvider op hook stalls the hot-copy get inside
// the provider; while it is stalled, hot-copy bookkeeping on other
// threads must still complete.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>

#include "cloud/profiles.h"
#include "core/hyrd_client.h"
#include "dist/scheme.h"

namespace hyrd::core {
namespace {

using namespace std::chrono_literals;

TEST(HotCopyConcurrency, GetDoesNotHoldHotLockAcrossCloudIO) {
  HyRDConfig config;
  config.hot_promotion_enabled = true;
  config.hot_promotion_reads = 1;
  cloud::CloudRegistry reg;
  cloud::install_standard_four(reg, 37);
  gcs::MultiCloudSession session(reg);
  HyRDClient client(session, config);

  const auto data = common::patterned(4 << 20, 55);
  ASSERT_TRUE(client.put("/hot", data).status.is_ok());
  ASSERT_TRUE(client.get("/hot").status.is_ok());  // 1st read promotes
  ASSERT_TRUE(client.has_hot_copy("/hot"));

  // Force the next get onto the hot copy: take down enough stripe slots
  // that the stripe is unreachable. The promotion target (fastest
  // provider) stays online and serves the full-object read.
  const std::string hot_provider =
      session.client(client.replica_targets().front()).provider_name();
  cloud::SimProvider* hot = reg.find(hot_provider);
  ASSERT_NE(hot, nullptr);
  for (const auto& p : reg.all()) {
    if (p->name() != hot_provider) p->set_online(false);
  }

  // Stall the hot-copy object's get inside the provider until released.
  const std::string hot_object = dist::fragment_object_name("/hot", 'h', 0);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool in_get = false;
  bool release = false;
  hot->set_op_hook(
      [&](cloud::OpKind op, const cloud::ObjectKey& key) {
        if (op != cloud::OpKind::kGet || key.name != hot_object) return;
        std::unique_lock lk(gate_mu);
        in_get = true;
        gate_cv.notify_all();
        gate_cv.wait(lk, [&] { return release; });
      });

  std::thread reader([&] {
    auto r = client.get("/hot");
    EXPECT_TRUE(r.status.is_ok());
    EXPECT_EQ(r.data, data);
  });
  {
    std::unique_lock lk(gate_mu);
    ASSERT_TRUE(gate_cv.wait_for(lk, 10s, [&] { return in_get; }))
        << "hot-copy get never reached the provider";
  }

  // The remote get is now parked inside the provider. Hot-copy state
  // queries take hot_mu_; they must not be stuck behind that I/O.
  auto probe = std::async(std::launch::async,
                          [&] { return client.has_hot_copy("/hot"); });
  const bool probe_done = probe.wait_for(2s) == std::future_status::ready;
  EXPECT_TRUE(probe_done)
      << "has_hot_copy blocked: get() holds hot_mu_ across cloud I/O";

  // Unblock regardless of outcome so a regression fails rather than hangs.
  {
    std::lock_guard lk(gate_mu);
    release = true;
  }
  gate_cv.notify_all();
  reader.join();
  if (probe_done) EXPECT_TRUE(probe.get());

  hot->set_op_hook(nullptr);
  for (const auto& p : reg.all()) p->set_online(true);
}

}  // namespace
}  // namespace hyrd::core
