#include "core/dedup.h"

#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "core/hyrd_client.h"

namespace hyrd::core {
namespace {

// ---------- DedupIndex unit tests ----------

meta::FileMeta meta_for(const std::string& path) {
  meta::FileMeta m;
  m.path = path;
  m.size = 100;
  m.locations = {{"Aliyun", "cas.r0"}, {"WindowsAzure", "cas.r1"}};
  return m;
}

TEST(DedupIndex, FindUnknownDigestIsEmpty) {
  DedupIndex index;
  EXPECT_FALSE(index.find(common::Sha256::digest({})).has_value());
}

TEST(DedupIndex, CanonicalThenAlias) {
  DedupIndex index;
  const auto digest = common::Sha256::digest(common::bytes_of("x"));
  index.add_canonical(digest, meta_for("/a"));
  index.add_alias(digest, "/b", 100);

  ASSERT_TRUE(index.find(digest).has_value());
  EXPECT_EQ(index.ref_count("/a"), 2u);
  EXPECT_EQ(index.ref_count("/b"), 2u);
  EXPECT_TRUE(index.is_shared("/a"));

  const auto stats = index.stats();
  EXPECT_EQ(stats.unique_files, 1u);
  EXPECT_EQ(stats.alias_files, 1u);
  EXPECT_EQ(stats.bytes_deduplicated, 100u);
}

TEST(DedupIndex, UnlinkReturnsTrueOnlyOnLastReference) {
  DedupIndex index;
  const auto digest = common::Sha256::digest(common::bytes_of("x"));
  index.add_canonical(digest, meta_for("/a"));
  index.add_alias(digest, "/b", 100);

  EXPECT_FALSE(index.unlink("/a"));  // /b still references
  EXPECT_TRUE(index.unlink("/b"));   // last one
  EXPECT_FALSE(index.find(digest).has_value());
}

TEST(DedupIndex, UnlinkUntrackedPathOwnsFragments) {
  DedupIndex index;
  EXPECT_TRUE(index.unlink("/never-seen"));
}

TEST(DedupIndex, ClearResets) {
  DedupIndex index;
  index.add_canonical(common::Sha256::digest(common::bytes_of("x")),
                      meta_for("/a"));
  index.clear();
  EXPECT_EQ(index.stats().unique_files, 0u);
}

// ---------- HyRD integration ----------

class DedupHyRDTest : public ::testing::Test {
 protected:
  DedupHyRDTest() {
    cloud::install_standard_four(registry_, 71);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
    HyRDConfig config;
    config.dedup_enabled = true;
    client_ = std::make_unique<HyRDClient>(*session_, config);
  }

  std::uint64_t fleet_bytes_written() {
    std::uint64_t total = 0;
    for (const auto& p : registry_.all()) {
      total += p->counters().bytes_written;
    }
    return total;
  }

  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
  std::unique_ptr<HyRDClient> client_;
};

TEST_F(DedupHyRDTest, DuplicatePutMovesNoData) {
  const auto data = common::patterned(500 * 1024, 1);
  ASSERT_TRUE(client_->put("/a", data).status.is_ok());
  for (const auto& p : registry_.all()) p->reset_counters();

  auto w = client_->put("/b", data);  // identical content
  ASSERT_TRUE(w.status.is_ok());

  // Only the metadata block moved; no data-container bytes.
  std::uint64_t data_bytes = 0;
  for (const auto& p : registry_.all()) {
    data_bytes += p->counters().bytes_written;
  }
  EXPECT_LT(data_bytes, 16 * 1024u);  // metadata blocks only
  EXPECT_EQ(client_->dedup().stats().alias_files, 1u);
  EXPECT_EQ(client_->dedup().stats().bytes_deduplicated, 500 * 1024u);

  // Both paths read back correctly.
  EXPECT_EQ(client_->get("/a").data, data);
  EXPECT_EQ(client_->get("/b").data, data);
}

TEST_F(DedupHyRDTest, LargeFileDedupAcrossErasure) {
  const auto data = common::patterned(4 << 20, 2);
  client_->put("/v1.iso", data);
  const std::uint64_t before = fleet_bytes_written();
  client_->put("/v2.iso", data);
  // The second copy must not re-stripe (allow metadata-only growth).
  EXPECT_LT(fleet_bytes_written() - before, 64 * 1024u);
  EXPECT_EQ(client_->get("/v2.iso").data, data);
}

TEST_F(DedupHyRDTest, RemovingAliasKeepsSharedFragments) {
  const auto data = common::patterned(200 * 1024, 3);
  client_->put("/a", data);
  client_->put("/b", data);
  ASSERT_TRUE(client_->remove("/a").status.is_ok());
  // /b still reads fine.
  auto r = client_->get("/b");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
  // Removing the last reference frees the fragments.
  ASSERT_TRUE(client_->remove("/b").status.is_ok());
  for (const auto& p : registry_.all()) {
    auto listing = p->list("hyrd-data");
    if (listing.ok()) EXPECT_TRUE(listing.names.empty()) << p->name();
  }
}

TEST_F(DedupHyRDTest, UpdateIsCopyOnWrite) {
  const auto data = common::patterned(100 * 1024, 4);
  client_->put("/a", data);
  client_->put("/b", data);

  const auto patch = common::patterned(1024, 5);
  ASSERT_TRUE(client_->update("/b", 50, patch).status.is_ok());

  // /a keeps the original; /b has the patched content.
  EXPECT_EQ(client_->get("/a").data, data);
  common::Bytes expected = data;
  std::copy(patch.begin(), patch.end(), expected.begin() + 50);
  EXPECT_EQ(client_->get("/b").data, expected);
  EXPECT_FALSE(client_->dedup().is_shared("/a"));
}

TEST_F(DedupHyRDTest, OverwritingSharedPathPreservesOtherAlias) {
  const auto data = common::patterned(80 * 1024, 6);
  client_->put("/a", data);  // canonical
  client_->put("/b", data);  // alias
  const auto fresh = common::patterned(80 * 1024, 7);
  client_->put("/a", fresh);  // canonical path overwritten

  EXPECT_EQ(client_->get("/a").data, fresh);
  EXPECT_EQ(client_->get("/b").data, data);  // alias unaffected
}

TEST_F(DedupHyRDTest, DifferentContentSameSizeNotAliased) {
  client_->put("/a", common::patterned(4096, 8));
  client_->put("/b", common::patterned(4096, 9));
  EXPECT_EQ(client_->dedup().stats().unique_files, 2u);
  EXPECT_EQ(client_->dedup().stats().alias_files, 0u);
}

TEST_F(DedupHyRDTest, ManyAliasesOneCopy) {
  const auto data = common::patterned(1 << 20, 10);  // exactly threshold
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        client_->put("/copies/c" + std::to_string(i), data).status.is_ok());
  }
  EXPECT_EQ(client_->dedup().stats().unique_files, 1u);
  EXPECT_EQ(client_->dedup().stats().alias_files, 5u);
  // Fleet stores ~1.5x one copy (k=2+1 stripe), not 6 copies.
  std::uint64_t resident = 0;
  for (const auto& p : registry_.all()) resident += p->stored_bytes();
  EXPECT_LT(resident, 2 * data.size());
}

TEST_F(DedupHyRDTest, DedupSurvivesOutage) {
  const auto data = common::patterned(300 * 1024, 11);
  client_->put("/a", data);
  registry_.find("WindowsAzure")->set_online(false);
  ASSERT_TRUE(client_->put("/b", data).status.is_ok());  // alias, meta logged
  auto r = client_->get("/b");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

}  // namespace
}  // namespace hyrd::core
