#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "core/single_client.h"
#include "core/storage_client.h"

namespace hyrd::core {
namespace {

TEST(StorageClientBase, MetaBlockPathRoundTrip) {
  const std::string path = StorageClientBase::meta_block_path("/mail/in");
  auto dir = StorageClientBase::parse_meta_block_path(path);
  ASSERT_TRUE(dir.has_value());
  EXPECT_EQ(*dir, "/mail/in");
}

TEST(StorageClientBase, UserPathsAreNotMetaBlockPaths) {
  EXPECT_FALSE(StorageClientBase::parse_meta_block_path("/mail/in").has_value());
  EXPECT_FALSE(StorageClientBase::parse_meta_block_path("/").has_value());
  EXPECT_FALSE(StorageClientBase::parse_meta_block_path("").has_value());
}

TEST(StorageClientBase, MetaBlockObjectNameDeterministicPerDirectory) {
  EXPECT_EQ(StorageClientBase::meta_block_object_name("/a"),
            StorageClientBase::meta_block_object_name("/a"));
  EXPECT_NE(StorageClientBase::meta_block_object_name("/a"),
            StorageClientBase::meta_block_object_name("/b"));
  EXPECT_TRUE(
      StorageClientBase::meta_block_object_name("/a").starts_with("md."));
}

TEST(ClientStats, MeanAcrossOpKinds) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 277);
  gcs::MultiCloudSession session(registry);
  SingleCloudClient client(session, "Aliyun");

  EXPECT_DOUBLE_EQ(client.stats_snapshot().mean_op_ms(), 0.0);

  client.put("/f", common::patterned(10000, 1));
  client.get("/f");
  client.update("/f", 0, common::patterned(100, 2));
  client.remove("/f");

  const auto s = client.stats_snapshot();
  EXPECT_EQ(s.put_ms.count(), 1u);
  EXPECT_EQ(s.get_ms.count(), 1u);
  EXPECT_EQ(s.update_ms.count(), 1u);
  EXPECT_EQ(s.remove_ms.count(), 1u);
  const double expected_mean =
      (s.put_ms.sum() + s.get_ms.sum() + s.update_ms.sum() +
       s.remove_ms.sum()) /
      4.0;
  EXPECT_NEAR(s.mean_op_ms(), expected_mean, 1e-9);
}

TEST(ClientStats, FailuresCounted) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 281);
  gcs::MultiCloudSession session(registry);
  SingleCloudClient client(session, "Aliyun");
  client.get("/missing");
  client.remove("/missing");
  EXPECT_EQ(client.stats_snapshot().failed_ops, 2u);
}

}  // namespace
}  // namespace hyrd::core
