#include "core/nccloud_client.h"

#include <gtest/gtest.h>

#include "cloud/outage.h"
#include "cloud/profiles.h"
#include "core/racs_client.h"

namespace hyrd::core {
namespace {

class NCCloudTest : public ::testing::Test {
 protected:
  NCCloudTest() {
    cloud::install_standard_four(registry_, 151);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
    client_ = std::make_unique<NCCloudClient>(*session_);
  }
  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
  std::unique_ptr<NCCloudClient> client_;
};

TEST_F(NCCloudTest, PutSpreadsTwoChunksPerCloud) {
  const auto data = common::patterned(1 << 20, 1);
  auto w = client_->put("/f", data);
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.meta.locations.size(), 8u);
  for (const auto& p : registry_.all()) {
    auto listing = p->list("nccloud-data");
    ASSERT_TRUE(listing.ok());
    // 2 data chunks + 1 metadata block object.
    EXPECT_EQ(listing.names.size(), 3u) << p->name();
  }
  // MSR storage point: 2x the object across the fleet (+ metadata).
  std::uint64_t resident = 0;
  for (const auto& p : registry_.all()) resident += p->stored_bytes();
  EXPECT_NEAR(static_cast<double>(resident) / data.size(), 2.0, 0.1);
}

TEST_F(NCCloudTest, RoundTripVariousSizes) {
  for (std::uint64_t size : {1ull, 100ull, 4096ull, 1048577ull}) {
    const auto data = common::patterned(size, size + 1);
    ASSERT_TRUE(client_->put("/s" + std::to_string(size), data)
                    .status.is_ok());
    auto r = client_->get("/s" + std::to_string(size));
    ASSERT_TRUE(r.status.is_ok()) << size;
    EXPECT_EQ(r.data, data) << size;
  }
}

TEST_F(NCCloudTest, ReadsFromTwoCloudsOnly) {
  const auto data = common::patterned(2 << 20, 2);
  client_->put("/f", data);
  for (const auto& p : registry_.all()) p->reset_counters();
  auto r = client_->get("/f");
  ASSERT_TRUE(r.status.is_ok());
  std::size_t clouds_touched = 0;
  for (const auto& p : registry_.all()) {
    if (p->counters().gets > 0) ++clouds_touched;
  }
  EXPECT_EQ(clouds_touched, 2u);
}

TEST_F(NCCloudTest, ToleratesTwoOutagesOnRead) {
  const auto data = common::patterned(500 * 1024, 3);
  client_->put("/f", data);
  registry_.find("AmazonS3")->set_online(false);
  registry_.find("Rackspace")->set_online(false);
  auto r = client_->get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
  EXPECT_TRUE(r.degraded);
}

TEST_F(NCCloudTest, ThreeOutagesIsDataLoss) {
  client_->put("/f", common::patterned(1000, 4));
  for (const char* n : {"AmazonS3", "Rackspace", "WindowsAzure"}) {
    registry_.find(n)->set_online(false);
  }
  auto r = client_->get("/f");
  EXPECT_FALSE(r.status.is_ok());
}

TEST_F(NCCloudTest, UpdateReencodesWholeObject) {
  const auto data = common::patterned(300 * 1024, 5);
  client_->put("/f", data);
  const auto patch = common::patterned(100, 6);
  auto u = client_->update("/f", 1000, patch);
  ASSERT_TRUE(u.status.is_ok());
  auto r = client_->get("/f");
  common::Bytes expected = data;
  std::copy(patch.begin(), patch.end(), expected.begin() + 1000);
  EXPECT_EQ(r.data, expected);
}

TEST_F(NCCloudTest, RemoveClearsChunks) {
  client_->put("/f", common::patterned(1000, 7));
  ASSERT_TRUE(client_->remove("/f").status.is_ok());
  EXPECT_EQ(client_->get("/f").status.code(), common::StatusCode::kNotFound);
}

TEST_F(NCCloudTest, CorruptChunkForcesAnotherPair) {
  const auto data = common::patterned(1 << 20, 8);
  auto w = client_->put("/f", data);
  ASSERT_TRUE(w.status.is_ok());
  // Corrupt one chunk on the fastest provider (Aliyun, first read choice).
  auto* ali = registry_.find("Aliyun");
  const std::size_t node = session_->index_of("Aliyun");
  const auto& loc = w.meta.locations[node * 2];
  auto chunk = ali->raw_store().get("nccloud-data", loc.object_name);
  ASSERT_TRUE(chunk.is_ok());
  common::Bytes bad = chunk.value().to_bytes();
  bad[7] ^= 0x10;
  ali->raw_store().put("nccloud-data", loc.object_name, bad);

  auto r = client_->get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.data, data);
}

TEST_F(NCCloudTest, FunctionalRepairAfterOutage) {
  cloud::OutageController outages(registry_);
  const auto data = common::patterned(2 << 20, 9);
  client_->put("/f", data);

  // S3 misses an overwrite during its outage.
  outages.take_down("AmazonS3");
  const auto fresh = common::patterned(2 << 20, 10);
  ASSERT_TRUE(client_->put("/f", fresh).status.is_ok());

  outages.restore("AmazonS3");
  for (const auto& p : registry_.all()) p->reset_counters();
  const auto latency = client_->on_provider_restored("AmazonS3");
  EXPECT_GT(latency, 0);

  // The regenerating saving: repair downloaded one chunk from each of the
  // 3 survivors = 0.75x the object, not the full object.
  std::uint64_t downloaded = 0;
  for (const auto& p : registry_.all()) downloaded += p->counters().bytes_read;
  EXPECT_NEAR(static_cast<double>(downloaded) / (2 << 20), 0.75, 0.05);

  // And S3 is a first-class node again: any other two clouds may fail.
  outages.take_down("Aliyun");
  outages.take_down("WindowsAzure");
  auto r = client_->get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, fresh);
}

TEST_F(NCCloudTest, RepairCheaperThanRacsResync) {
  // Table I "Recovery: Moderate": NCCloud's repair traffic beats RACS's
  // conventional reconstruction for the same stored object.
  const auto data = common::patterned(3 << 20, 11);
  cloud::OutageController outages(registry_);

  client_->put("/nc", data);
  outages.take_down("AmazonS3");
  client_->put("/nc", common::patterned(3 << 20, 12));
  outages.restore("AmazonS3");
  for (const auto& p : registry_.all()) p->reset_counters();
  client_->on_provider_restored("AmazonS3");
  std::uint64_t nccloud_traffic = 0;
  for (const auto& p : registry_.all()) {
    nccloud_traffic +=
        p->counters().bytes_read + p->counters().bytes_written;
  }

  cloud::CloudRegistry reg2;
  cloud::install_standard_four(reg2, 151);
  gcs::MultiCloudSession session2(reg2);
  RACSClient racs(session2);
  cloud::OutageController outages2(reg2);
  racs.put("/nc", data);
  outages2.take_down("AmazonS3");
  racs.put("/nc", common::patterned(3 << 20, 12));
  outages2.restore("AmazonS3");
  for (const auto& p : reg2.all()) p->reset_counters();
  racs.on_provider_restored("AmazonS3");
  std::uint64_t racs_traffic = 0;
  for (const auto& p : reg2.all()) {
    racs_traffic += p->counters().bytes_read + p->counters().bytes_written;
  }

  EXPECT_LT(nccloud_traffic, racs_traffic);
}

}  // namespace
}  // namespace hyrd::core
