#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cloud/profiles.h"
#include "core/evaluator.h"
#include "core/workload_monitor.h"

namespace hyrd::core {
namespace {

TEST(WorkloadMonitor, ClassifiesByThreshold) {
  WorkloadMonitor m(1 << 20);
  EXPECT_EQ(m.classify_file(0), DataClass::kSmallFile);
  EXPECT_EQ(m.classify_file(4096), DataClass::kSmallFile);
  EXPECT_EQ(m.classify_file((1 << 20) - 1), DataClass::kSmallFile);
  EXPECT_EQ(m.classify_file(1 << 20), DataClass::kLargeFile);
  EXPECT_EQ(m.classify_file(100u << 20), DataClass::kLargeFile);
}

TEST(WorkloadMonitor, ThresholdIsConfigurable) {
  WorkloadMonitor m(4096);
  EXPECT_EQ(m.classify_file(4096), DataClass::kLargeFile);
  m.set_threshold(8192);
  EXPECT_EQ(m.classify_file(4096), DataClass::kSmallFile);
  EXPECT_EQ(m.threshold(), 8192u);
}

TEST(WorkloadMonitor, TracksPerClassTraffic) {
  WorkloadMonitor m(1 << 20);
  m.record_write(DataClass::kSmallFile, 100);
  m.record_write(DataClass::kSmallFile, 200);
  m.record_read(DataClass::kLargeFile, 5000);
  m.record_write(DataClass::kMetadata, 50);

  EXPECT_EQ(m.stats(DataClass::kSmallFile).writes, 2u);
  EXPECT_EQ(m.stats(DataClass::kSmallFile).bytes_written, 300u);
  EXPECT_EQ(m.stats(DataClass::kLargeFile).reads, 1u);
  EXPECT_EQ(m.stats(DataClass::kLargeFile).bytes_read, 5000u);
  EXPECT_EQ(m.stats(DataClass::kMetadata).writes, 1u);
}

TEST(WorkloadMonitor, ReadCountsBumpAndForget) {
  WorkloadMonitor m(1 << 20);
  EXPECT_EQ(m.bump_read_count("/f"), 1u);
  EXPECT_EQ(m.bump_read_count("/f"), 2u);
  EXPECT_EQ(m.bump_read_count("/g"), 1u);
  m.forget("/f");
  EXPECT_EQ(m.bump_read_count("/f"), 1u);
}

TEST(WorkloadMonitor, ReadTrackerStaysBounded) {
  // The per-path read-count map must not grow with the namespace: with a
  // cap of 8, bumping 100 distinct paths decays/evicts instead of
  // accumulating per-path state forever.
  WorkloadMonitor m(1 << 20, /*read_tracker_cap=*/8);
  EXPECT_EQ(m.read_tracker_cap(), 8u);
  for (int i = 0; i < 100; ++i) {
    m.bump_read_count("/bounded/p" + std::to_string(i));
    EXPECT_LE(m.read_tracker_size(), 8u) << i;
  }
  // A genuinely hot path keeps climbing despite the churn around it.
  std::uint32_t hot = 0;
  for (int i = 0; i < 16; ++i) hot = m.bump_read_count("/bounded/hot");
  EXPECT_GE(hot, 2u);
  EXPECT_LE(m.read_tracker_size(), 8u);
}

TEST(WorkloadMonitor, ReadTrackerDecayHalvesCounts) {
  WorkloadMonitor m(1 << 20, /*read_tracker_cap=*/4);
  for (int i = 0; i < 8; ++i) m.bump_read_count("/hot");
  // Overflow the cap so a decay pass runs, then observe the halved count
  // on the next bump (8 -> 4-ish, +1).
  for (int i = 0; i < 8; ++i) m.bump_read_count("/cold" + std::to_string(i));
  const std::uint32_t after = m.bump_read_count("/hot");
  EXPECT_LT(after, 9u);
  EXPECT_GE(after, 1u);
}

TEST(WorkloadMonitor, ConcurrentThresholdUpdatesAndClassification) {
  // The adaptive controller retunes the threshold online while writers
  // classify concurrently; threshold_ is a relaxed atomic, so this must
  // be race-free (TSan lane runs this suite).
  WorkloadMonitor m(1 << 20);
  std::atomic<bool> stop{false};
  std::thread tuner([&] {
    std::uint64_t t = 64u << 10;
    while (!stop.load(std::memory_order_relaxed)) {
      m.set_threshold(t);
      t = t >= (64ull << 20) ? (64u << 10) : t * 2;
    }
  });
  std::uint64_t small = 0, large = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto c = m.classify_file(1u << (i % 28));
    (c == DataClass::kLargeFile ? large : small)++;
  }
  stop.store(true, std::memory_order_relaxed);
  tuner.join();
  EXPECT_EQ(small + large, 50000u);
  // Every classification used *some* valid threshold from the ladder.
  EXPECT_GE(m.threshold(), 64u << 10);
  EXPECT_LE(m.threshold(), 64ull << 20);
}

TEST(WorkloadMonitor, DataClassNames) {
  EXPECT_EQ(data_class_name(DataClass::kMetadata), "metadata");
  EXPECT_EQ(data_class_name(DataClass::kSmallFile), "small-file");
  EXPECT_EQ(data_class_name(DataClass::kLargeFile), "large-file");
}

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() {
    cloud::install_standard_four(registry_, 17);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
  }
  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
};

TEST_F(EvaluatorTest, MeasuredOrderMatchesCalibration) {
  CostPerfEvaluator evaluator(HyRDConfig{});
  auto report = evaluator.evaluate(*session_);
  ASSERT_EQ(report.providers.size(), 4u);

  const auto perf = report.performance_order();
  EXPECT_EQ(session_->client(perf[0]).provider_name(), "Aliyun");
  EXPECT_EQ(session_->client(perf[1]).provider_name(), "WindowsAzure");

  const auto cost = report.cost_order();
  EXPECT_EQ(session_->client(cost[0]).provider_name(), "Rackspace");
  EXPECT_EQ(session_->client(cost.back()).provider_name(), "AmazonS3");
}

TEST_F(EvaluatorTest, CategoriesMatchTableII) {
  CostPerfEvaluator evaluator(HyRDConfig{});
  auto report = evaluator.evaluate(*session_);
  for (const auto& e : report.providers) {
    if (e.provider == "Aliyun") {
      // The paper's unique provider: both categories.
      EXPECT_TRUE(e.category.performance_oriented);
      EXPECT_TRUE(e.category.cost_oriented);
    }
    if (e.provider == "AmazonS3") {
      // Table II: cost-oriented (cheapest-but-one storage), not fast.
      EXPECT_FALSE(e.category.performance_oriented);
      EXPECT_TRUE(e.category.cost_oriented);
    }
    if (e.provider == "WindowsAzure") {
      // Table II: the only purely performance-oriented provider.
      EXPECT_TRUE(e.category.performance_oriented);
      EXPECT_FALSE(e.category.cost_oriented);
    }
    if (e.provider == "Rackspace") {
      EXPECT_TRUE(e.category.cost_oriented);
      EXPECT_FALSE(e.category.performance_oriented);
    }
  }
}

TEST_F(EvaluatorTest, ProbesChargeTimeAndMoney) {
  CostPerfEvaluator evaluator(HyRDConfig{});
  auto report = evaluator.evaluate(*session_);
  EXPECT_GT(report.probe_latency, 0);
  // The probes moved real (simulated) bytes => S3 charged for egress.
  auto* s3 = registry_.find("AmazonS3");
  EXPECT_GT(s3->counters().gets, 0u);
  EXPECT_GT(s3->billing().open_month_transfer_cost(), 0.0);
}

TEST_F(EvaluatorTest, OfflineProviderFallsToBackOfPerformanceOrder) {
  registry_.find("Aliyun")->set_online(false);
  CostPerfEvaluator evaluator(HyRDConfig{});
  auto report = evaluator.evaluate(*session_);
  const auto perf = report.performance_order();
  EXPECT_EQ(session_->client(perf.back()).provider_name(), "Aliyun");
  EXPECT_EQ(session_->client(perf[0]).provider_name(), "WindowsAzure");
}

TEST_F(EvaluatorTest, MeanLatenciesArePlausible) {
  CostPerfEvaluator evaluator(HyRDConfig{});
  auto report = evaluator.evaluate(*session_);
  for (const auto& e : report.providers) {
    EXPECT_GT(e.mean_read_ms, 0.0) << e.provider;
    EXPECT_GT(e.mean_write_ms, e.mean_read_ms * 0.5) << e.provider;
    EXPECT_LT(e.mean_read_ms, 5000.0) << e.provider;
  }
}

}  // namespace
}  // namespace hyrd::core
