// The client cache threaded through StorageClient, exercised end-to-end
// against HyRD on the standard four-provider fleet: absorb/coherence
// rules, group-commit batching boundaries, dirty-data loss under injected
// provider failures, and the disabled-cache bypass.
#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "common/bytes.h"
#include "core/hyrd_client.h"
#include "sim/event_queue.h"
#include "sim/failure.h"

namespace hyrd::core {
namespace {

class CacheClientTest : public ::testing::Test {
 protected:
  CacheClientTest() {
    cloud::install_standard_four(registry_, 29);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
    client_ = std::make_unique<HyRDClient>(*session_);
  }

  cache::CacheConfig cache_config(std::size_t group_entries = 32) {
    cache::CacheConfig cc;
    cc.enabled = true;
    cc.group_commit_entries = group_entries;
    return cc;
  }

  std::uint64_t fleet_put_ops() const {
    std::uint64_t total = 0;
    for (const auto& p : registry_.all()) total += p->counters().puts;
    return total;
  }

  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
  std::unique_ptr<HyRDClient> client_;
};

TEST_F(CacheClientTest, AbsorbedPutServesCoherentRead) {
  client_->configure_cache(cache_config());
  const auto data = common::patterned(4096, 1);
  const std::uint64_t puts_before = fleet_put_ops();

  auto w = client_->put("/d/small", data);
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.latency, 0);  // absorbed at memory speed
  EXPECT_EQ(fleet_put_ops(), puts_before);  // nothing reached a provider

  auto r = client_->get("/d/small");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);  // the dirty bytes, byte-for-byte
  EXPECT_EQ(r.latency, 0);

  const auto cs = client_->client_cache()->stats_snapshot();
  EXPECT_EQ(cs.absorbed_writes, 1u);
  EXPECT_EQ(cs.dirty_hits, 1u);
  EXPECT_EQ(cs.dirty_entries_now, 1u);
}

TEST_F(CacheClientTest, FlushOnReadWhenDirtyServeDisabled) {
  auto cc = cache_config();
  cc.serve_dirty_reads = false;
  client_->configure_cache(cc);
  const auto data = common::patterned(2048, 2);
  ASSERT_TRUE(client_->put("/d/f", data).status.is_ok());

  // The read must see flushed, durable data: coherence forces the dirty
  // entry out before the remote GET.
  auto r = client_->get("/d/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
  const auto cs = client_->client_cache()->stats_snapshot();
  EXPECT_EQ(cs.forced_flushes, 1u);
  EXPECT_EQ(cs.dirty_entries_now, 0u);
  EXPECT_GT(r.latency, 0);  // a real remote read happened
}

TEST_F(CacheClientTest, GroupCommitFlushesAtTheBatchBoundary) {
  client_->configure_cache(cache_config(/*group_entries=*/4));
  const auto data = common::patterned(1024, 3);
  for (int i = 0; i < 3; ++i) {
    auto w = client_->put("/g/f" + std::to_string(i), data);
    ASSERT_TRUE(w.status.is_ok());
    EXPECT_EQ(w.latency, 0);
  }
  auto cs = client_->client_cache()->stats_snapshot();
  EXPECT_EQ(cs.flush_batches, 0u);  // N-1 dirty entries: no flush yet
  EXPECT_EQ(cs.dirty_entries_now, 3u);

  // The Nth put trips the watermark: ONE batch commits all N entries,
  // and the watermark-tripping put pays the group-commit latency.
  auto w = client_->put("/g/f3", data);
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_GT(w.latency, 0);
  cs = client_->client_cache()->stats_snapshot();
  EXPECT_EQ(cs.flush_batches, 1u);
  EXPECT_EQ(cs.flushed_entries, 4u);
  EXPECT_EQ(cs.dirty_entries_now, 0u);

  // Everything is durable and readable.
  for (int i = 0; i < 4; ++i) {
    auto r = client_->get("/g/f" + std::to_string(i));
    ASSERT_TRUE(r.status.is_ok()) << i;
    EXPECT_EQ(r.data, data);
  }
}

TEST_F(CacheClientTest, ExplicitFlushDrainsEverything) {
  client_->configure_cache(cache_config());
  const auto data = common::patterned(512, 4);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        client_->put("/e/f" + std::to_string(i), data).status.is_ok());
  }
  const auto drain = client_->flush_cache();
  EXPECT_EQ(drain.flushed_entries, 5u);
  EXPECT_EQ(drain.remaining_entries, 0u);
  EXPECT_GT(drain.latency, 0);
  EXPECT_TRUE(client_->client_cache()->dirty_empty());

  // Durable: disable the cache entirely and re-read from the providers.
  client_->configure_cache(cache::CacheConfig{});
  EXPECT_EQ(client_->client_cache(), nullptr);
  auto r = client_->get("/e/f4");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(CacheClientTest, DirtyLossUnderInjectedPermanentFailure) {
  client_->configure_cache(cache_config());
  const auto data = common::patterned(4096, 5);
  ASSERT_TRUE(client_->put("/loss/a", data).status.is_ok());
  ASSERT_TRUE(client_->put("/loss/b", data).status.is_ok());

  // The whole fleet is destroyed by injected events before any flush.
  sim::EventQueue queue;
  sim::FailureInjector injector(registry_, queue);
  for (const auto& p : registry_.all()) {
    injector.schedule_permanent_loss(p->name(), common::kSecond);
  }
  queue.run();
  for (const auto& p : registry_.all()) EXPECT_FALSE(p->online());

  const auto drain = client_->flush_cache();
  EXPECT_EQ(drain.flushed_entries, 0u);
  EXPECT_EQ(drain.remaining_entries, 2u);

  const auto lost = client_->client_cache()->discard_all_dirty();
  EXPECT_EQ(lost.first, 2u);
  EXPECT_EQ(lost.second, 2u * 4096u);
  const auto cs = client_->client_cache()->stats_snapshot();
  EXPECT_EQ(cs.dirty_lost_entries, 2u);
  EXPECT_EQ(cs.dirty_lost_bytes, 2u * 4096u);
  EXPECT_GT(cs.flush_failures, 0u);
}

TEST_F(CacheClientTest, RemoveOfNeverFlushedObjectIsLocal) {
  client_->configure_cache(cache_config());
  const auto data = common::patterned(1024, 6);
  const std::uint64_t puts_before = fleet_put_ops();
  ASSERT_TRUE(client_->put("/tmp/scratch", data).status.is_ok());

  auto rm = client_->remove("/tmp/scratch");
  ASSERT_TRUE(rm.status.is_ok());
  EXPECT_EQ(rm.latency, 0);  // never reached a provider, nothing to undo
  EXPECT_EQ(fleet_put_ops(), puts_before);
  EXPECT_TRUE(client_->client_cache()->dirty_empty());
  EXPECT_FALSE(client_->get("/tmp/scratch").status.is_ok());
}

TEST_F(CacheClientTest, UpdateForcesCoherenceThenPatches) {
  client_->configure_cache(cache_config());
  auto data = common::patterned(4096, 7);
  ASSERT_TRUE(client_->put("/u/f", data).status.is_ok());

  const common::Bytes patch = {0xde, 0xad, 0xbe, 0xef};
  auto u = client_->update("/u/f", 100, patch);
  ASSERT_TRUE(u.status.is_ok());
  EXPECT_EQ(client_->client_cache()->stats_snapshot().forced_flushes, 1u);

  auto r = client_->get("/u/f");
  ASSERT_TRUE(r.status.is_ok());
  common::Bytes expect(data.begin(), data.end());
  std::copy(patch.begin(), patch.end(), expect.begin() + 100);
  EXPECT_EQ(r.data, expect);
}

TEST_F(CacheClientTest, StatAndListSeeDirtyEntries) {
  client_->configure_cache(cache_config());
  const auto data = common::patterned(2000, 8);
  ASSERT_TRUE(client_->put("/vis/pending", data).status.is_ok());

  auto st = client_->stat("/vis/pending");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->size, 2000u);
  EXPECT_EQ(st->redundancy, meta::RedundancyKind::kReplicated);

  const auto paths = client_->list();
  EXPECT_NE(std::find(paths.begin(), paths.end(), "/vis/pending"),
            paths.end());
}

TEST_F(CacheClientTest, ReadThroughCacheHitsAfterFirstMiss) {
  auto cc = cache_config();
  cc.write_back_enabled = false;  // isolate the read path
  client_->configure_cache(cc);
  const auto data = common::patterned(4096, 9);
  ASSERT_TRUE(client_->put("/r/f", data).status.is_ok());

  auto miss = client_->get("/r/f");
  ASSERT_TRUE(miss.status.is_ok());
  EXPECT_GT(miss.latency, 0);
  auto hit = client_->get("/r/f");
  ASSERT_TRUE(hit.status.is_ok());
  EXPECT_EQ(hit.latency, 0);
  EXPECT_EQ(hit.data, data);

  const auto cs = client_->client_cache()->stats_snapshot();
  EXPECT_EQ(cs.read_misses, 1u);
  EXPECT_EQ(cs.read_hits, 1u);
  EXPECT_EQ(cs.absorbed_writes, 0u);  // write-back off: puts went remote
}

TEST_F(CacheClientTest, CoalescedOverwriteKeepsNewestPayload) {
  client_->configure_cache(cache_config());
  const auto v1 = common::patterned(1024, 10);
  const auto v2 = common::patterned(1024, 11);
  ASSERT_TRUE(client_->put("/c/f", v1).status.is_ok());
  ASSERT_TRUE(client_->put("/c/f", v2).status.is_ok());
  EXPECT_EQ(client_->client_cache()->stats_snapshot().coalesced_writes, 1u);

  ASSERT_GT(client_->flush_cache().flushed_entries, 0u);
  auto r = client_->get("/c/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, v2);
}

TEST_F(CacheClientTest, LargeWritesBypassTheWriteBack) {
  client_->configure_cache(cache_config());
  // Above both max_object_bytes and HyRD's classification threshold:
  // goes straight to the erasure path, never dirty.
  const auto big = common::patterned(2 << 20, 12);
  auto w = client_->put("/big/f", big);
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.meta.redundancy, meta::RedundancyKind::kErasure);
  EXPECT_TRUE(client_->client_cache()->dirty_empty());
  EXPECT_EQ(client_->client_cache()->stats_snapshot().absorbed_writes, 0u);
}

}  // namespace
}  // namespace hyrd::core
