#include "core/depsky_client.h"

#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "core/duracloud_client.h"

namespace hyrd::core {
namespace {

class DepSkyTest : public ::testing::Test {
 protected:
  DepSkyTest() {
    cloud::install_standard_four(registry_, 121);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
    client_ = std::make_unique<DepSkyClient>(*session_);
  }
  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
  std::unique_ptr<DepSkyClient> client_;
};

TEST_F(DepSkyTest, ReplicatesOnEveryCloud) {
  const auto data = common::patterned(100 * 1024, 1);
  auto w = client_->put("/f", data);
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.meta.locations.size(), 4u);
  for (const auto& p : registry_.all()) {
    EXPECT_GE(p->stored_bytes(), data.size()) << p->name();
  }
  auto r = client_->get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(DepSkyTest, QuorumIsNMinusF) { EXPECT_EQ(client_->quorum(), 3u); }

TEST_F(DepSkyTest, WriteLatencyIsQuorumNotSlowest) {
  // The 3rd-fastest acknowledgment gates the write, so DepSky writes are
  // faster than a wait-for-all fan-out over the same four clouds.
  const auto data = common::patterned(1 << 20, 2);
  auto w = client_->put("/q", data);
  ASSERT_TRUE(w.status.is_ok());

  // Wait-for-all reference: a parallel ReplicationScheme over all four.
  dist::ReplicationScheme all_four("depsky-data");
  auto ref = all_four.write(*session_, "/all", data, {0, 1, 2, 3});
  ASSERT_TRUE(ref.status.is_ok());
  // w.latency includes metadata persistence; compare the data part only
  // by writing another object through the reference scheme.
  EXPECT_LT(w.meta.size, ref.meta.size + 1);  // sanity
  // The quorum write must not be slower than wait-for-all + metadata.
  EXPECT_LT(w.latency, ref.latency * 2);
}

TEST_F(DepSkyTest, ToleratesSingleOutageOnWriteAndRead) {
  registry_.find("Rackspace")->set_online(false);
  const auto data = common::patterned(50 * 1024, 3);
  auto w = client_->put("/f", data);
  ASSERT_TRUE(w.status.is_ok());  // 3 acks = quorum
  auto r = client_->get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(DepSkyTest, TwoOutagesBreakWriteQuorum) {
  registry_.find("Rackspace")->set_online(false);
  registry_.find("AmazonS3")->set_online(false);
  auto w = client_->put("/f", common::patterned(1000, 4));
  EXPECT_EQ(w.status.code(), common::StatusCode::kUnavailable);
}

TEST_F(DepSkyTest, ReadsSurviveTwoOutages) {
  // Reads need only one verified replica: stronger than the write quorum.
  const auto data = common::patterned(2000, 5);
  client_->put("/f", data);
  registry_.find("Rackspace")->set_online(false);
  registry_.find("AmazonS3")->set_online(false);
  registry_.find("WindowsAzure")->set_online(false);
  auto r = client_->get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(DepSkyTest, OutageWriteLoggedAndResynced) {
  registry_.find("AmazonS3")->set_online(false);
  const auto data = common::patterned(10 * 1024, 6);
  ASSERT_TRUE(client_->put("/f", data).status.is_ok());
  EXPECT_FALSE(client_->update_log().pending_for("AmazonS3").empty());

  registry_.find("AmazonS3")->set_online(true);
  client_->on_provider_restored("AmazonS3");
  EXPECT_TRUE(client_->update_log().pending_for("AmazonS3").empty());

  // S3's replica is now consistent: read with everything else down.
  for (const char* n : {"WindowsAzure", "Aliyun", "Rackspace"}) {
    registry_.find(n)->set_online(false);
  }
  auto r = client_->get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(DepSkyTest, PartialUpdateQuorum) {
  const auto data = common::patterned(10000, 7);
  client_->put("/f", data);
  const auto patch = common::patterned(100, 8);
  auto u = client_->update("/f", 500, patch);
  ASSERT_TRUE(u.status.is_ok());
  auto r = client_->get("/f");
  common::Bytes expected = data;
  std::copy(patch.begin(), patch.end(), expected.begin() + 500);
  EXPECT_EQ(r.data, expected);
}

TEST_F(DepSkyTest, UpdateCannotGrow) {
  client_->put("/f", common::patterned(100, 9));
  EXPECT_EQ(client_->update("/f", 95, common::patterned(10, 10)).status.code(),
            common::StatusCode::kInvalidArgument);
}

TEST_F(DepSkyTest, FourTimesStorageCost) {
  // Table I: DepSky cost "High" — full replication on every cloud.
  const auto data = common::patterned(1 << 20, 11);
  client_->put("/f", data);
  std::uint64_t resident = 0;
  for (const auto& p : registry_.all()) resident += p->stored_bytes();
  EXPECT_GE(resident, 4u * data.size());
}

TEST_F(DepSkyTest, RemoveClearsAllClouds) {
  auto w = client_->put("/f", common::patterned(1000, 12));
  ASSERT_TRUE(w.status.is_ok());
  ASSERT_TRUE(client_->remove("/f").status.is_ok());
  // The file's own replicas are gone from every cloud; only the "/"
  // directory's metadata-block object remains (one per cloud).
  for (const auto& p : registry_.all()) {
    for (const auto& loc : w.meta.locations) {
      if (loc.provider != p->name()) continue;
      EXPECT_EQ(p->raw_store().object_size("depsky-data", loc.object_name),
                std::nullopt)
          << p->name();
    }
    auto listing = p->list("depsky-data");
    ASSERT_TRUE(listing.ok());
    EXPECT_EQ(listing.names.size(), 1u) << p->name();
  }
}

}  // namespace
}  // namespace hyrd::core
