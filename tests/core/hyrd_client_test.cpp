#include "core/hyrd_client.h"

#include <gtest/gtest.h>

#include "cloud/profiles.h"

namespace hyrd::core {
namespace {

class HyRDClientTest : public ::testing::Test {
 protected:
  HyRDClientTest() {
    cloud::install_standard_four(registry_, 23);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
    client_ = std::make_unique<HyRDClient>(*session_);
  }

  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
  std::unique_ptr<HyRDClient> client_;
};

TEST_F(HyRDClientTest, DispatcherTargets) {
  // Replicas on the two fastest providers; parity slot on the priciest.
  ASSERT_EQ(client_->replica_targets().size(), 2u);
  EXPECT_EQ(session_->client(client_->replica_targets()[0]).provider_name(),
            "Aliyun");
  EXPECT_EQ(session_->client(client_->replica_targets()[1]).provider_name(),
            "WindowsAzure");
  // Large-file slots: cost-oriented providers only (paper Fig. 2) —
  // Rackspace + Aliyun data, parity on AmazonS3 (most expensive to serve).
  ASSERT_EQ(client_->shard_slots().size(), 3u);
  EXPECT_EQ(session_->client(client_->shard_slots()[0]).provider_name(),
            "Rackspace");
  EXPECT_EQ(session_->client(client_->shard_slots()[1]).provider_name(),
            "Aliyun");
  EXPECT_EQ(session_->client(client_->shard_slots().back()).provider_name(),
            "AmazonS3");
}

TEST_F(HyRDClientTest, SmallFileIsReplicated) {
  const auto data = common::patterned(4096, 1);
  auto w = client_->put("/docs/small.txt", data);
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.meta.redundancy, meta::RedundancyKind::kReplicated);
  EXPECT_EQ(w.meta.locations.size(), 2u);

  auto r = client_->get("/docs/small.txt");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(HyRDClientTest, LargeFileIsErasureCoded) {
  const auto data = common::patterned(4 << 20, 2);
  auto w = client_->put("/media/video.mp4", data);
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.meta.redundancy, meta::RedundancyKind::kErasure);
  EXPECT_EQ(w.meta.locations.size(), 3u);  // k=2 data + 1 parity

  auto r = client_->get("/media/video.mp4");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(HyRDClientTest, ThresholdBoundaryExactlyAt1MB) {
  auto small = client_->put("/a", common::patterned((1 << 20) - 1, 3));
  auto large = client_->put("/b", common::patterned(1 << 20, 4));
  EXPECT_EQ(small.meta.redundancy, meta::RedundancyKind::kReplicated);
  EXPECT_EQ(large.meta.redundancy, meta::RedundancyKind::kErasure);
}

TEST_F(HyRDClientTest, MetadataBlocksLandOnPerformanceProviders) {
  client_->put("/d/f", common::patterned(100, 5));
  // Metadata container objects exist only on Aliyun + Azure.
  auto ali = registry_.find("Aliyun")->list("hyrd-meta");
  ASSERT_TRUE(ali.ok());
  EXPECT_FALSE(ali.names.empty());
  auto s3 = registry_.find("AmazonS3")->list("hyrd-meta");
  ASSERT_TRUE(s3.ok());
  EXPECT_TRUE(s3.names.empty());
}

TEST_F(HyRDClientTest, StatAndList) {
  client_->put("/d/a", common::patterned(10, 6));
  client_->put("/d/b", common::patterned(2 << 20, 7));
  EXPECT_TRUE(client_->stat("/d/a").has_value());
  EXPECT_FALSE(client_->stat("/d/zz").has_value());
  const auto paths = client_->list();
  EXPECT_EQ(paths.size(), 2u);  // synthetic meta paths are hidden
}

TEST_F(HyRDClientTest, GetMissingFileFails) {
  auto r = client_->get("/nope");
  EXPECT_EQ(r.status.code(), common::StatusCode::kNotFound);
}

TEST_F(HyRDClientTest, OverwriteBumpsVersion) {
  client_->put("/f", common::patterned(100, 8));
  auto w2 = client_->put("/f", common::patterned(200, 9));
  ASSERT_TRUE(w2.status.is_ok());
  EXPECT_EQ(w2.meta.version, 2u);
  auto r = client_->get("/f");
  EXPECT_EQ(r.data.size(), 200u);
}

TEST_F(HyRDClientTest, FileCrossingThresholdSwitchesRedundancy) {
  auto small = client_->put("/grow", common::patterned(1000, 10));
  EXPECT_EQ(small.meta.redundancy, meta::RedundancyKind::kReplicated);
  auto big = client_->put("/grow", common::patterned(2 << 20, 11));
  ASSERT_TRUE(big.status.is_ok());
  EXPECT_EQ(big.meta.redundancy, meta::RedundancyKind::kErasure);
  auto r = client_->get("/grow");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data.size(), 2u << 20);

  // Old replicas must be gone: total objects = 3 fragments (k=2 + parity).
  std::uint64_t data_objects = 0;
  for (const auto& p : registry_.all()) {
    auto listing = p->list("hyrd-data");
    if (listing.ok()) data_objects += listing.names.size();
  }
  EXPECT_EQ(data_objects, 3u);
}

TEST_F(HyRDClientTest, ShrinkingBackSwitchesToReplication) {
  client_->put("/shrink", common::patterned(2 << 20, 12));
  auto w = client_->put("/shrink", common::patterned(500, 13));
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.meta.redundancy, meta::RedundancyKind::kReplicated);
  auto r = client_->get("/shrink");
  EXPECT_EQ(r.data.size(), 500u);
}

TEST_F(HyRDClientTest, RemoveDeletesDataAndUpdatesMetadata) {
  client_->put("/d/f", common::patterned(100, 14));
  auto rm = client_->remove("/d/f");
  ASSERT_TRUE(rm.status.is_ok());
  EXPECT_FALSE(client_->stat("/d/f").has_value());
  EXPECT_EQ(client_->get("/d/f").status.code(),
            common::StatusCode::kNotFound);
  for (const auto& p : registry_.all()) {
    auto listing = p->list("hyrd-data");
    if (listing.ok()) EXPECT_TRUE(listing.names.empty()) << p->name();
  }
}

TEST_F(HyRDClientTest, SmallWholeFileUpdateNeedsNoReads) {
  const auto data = common::patterned(8192, 15);
  client_->put("/f", data);
  for (const auto& p : registry_.all()) p->reset_counters();

  auto u = client_->update("/f", 0, common::patterned(8192, 16));
  ASSERT_TRUE(u.status.is_ok());
  std::uint64_t gets = 0;
  for (const auto& p : registry_.all()) gets += p->counters().gets;
  EXPECT_EQ(gets, 0u);  // replication overwrite: zero read amplification
}

TEST_F(HyRDClientTest, LargeFileSmallUpdateUsesRmw) {
  client_->put("/big", common::patterned(6 << 20, 17));
  for (const auto& p : registry_.all()) p->reset_counters();

  auto u = client_->update("/big", 42, common::patterned(4096, 18));
  ASSERT_TRUE(u.status.is_ok());
  std::uint64_t gets = 0, data_puts = 0;
  for (const auto& p : registry_.all()) {
    gets += p->counters().gets;
    data_puts += p->counters().puts;
  }
  EXPECT_EQ(gets, 2u);  // old fragment + parity
  // 2 fragment writes + 2 metadata-block replica writes.
  EXPECT_EQ(data_puts, 4u);

  auto r = client_->get("/big");
  ASSERT_TRUE(r.status.is_ok());
  common::Bytes expected = common::patterned(6 << 20, 17);
  const auto patch = common::patterned(4096, 18);
  std::copy(patch.begin(), patch.end(), expected.begin() + 42);
  EXPECT_EQ(r.data, expected);
}

TEST_F(HyRDClientTest, UpdateCannotGrowFile) {
  client_->put("/f", common::patterned(100, 19));
  auto u = client_->update("/f", 90, common::patterned(20, 20));
  EXPECT_EQ(u.status.code(), common::StatusCode::kInvalidArgument);
}

TEST_F(HyRDClientTest, StatsTrackOperations) {
  client_->put("/f", common::patterned(100, 21));
  client_->get("/f");
  client_->get("/f");
  const auto stats = client_->stats_snapshot();
  EXPECT_EQ(stats.put_ms.count(), 1u);
  EXPECT_EQ(stats.get_ms.count(), 2u);
  EXPECT_GT(stats.mean_op_ms(), 0.0);
  client_->reset_stats();
  EXPECT_EQ(client_->stats_snapshot().put_ms.count(), 0u);
}

TEST_F(HyRDClientTest, HotPromotionCreatesFastCopy) {
  HyRDConfig config;
  config.hot_promotion_enabled = true;
  config.hot_promotion_reads = 3;
  // Fresh fleet to avoid interference.
  cloud::CloudRegistry reg;
  cloud::install_standard_four(reg, 31);
  gcs::MultiCloudSession session(reg);
  HyRDClient client(session, config);

  const auto data = common::patterned(4 << 20, 22);
  client.put("/hot", data);
  EXPECT_FALSE(client.has_hot_copy("/hot"));
  common::SimDuration normal_latency = 0;
  for (int i = 0; i < 3; ++i) {
    auto r = client.get("/hot");
    ASSERT_TRUE(r.status.is_ok());
    normal_latency = r.latency;
  }
  EXPECT_TRUE(client.has_hot_copy("/hot"));

  // The dispatcher picks hot copy vs stripe by expected latency; either
  // way the data must be exact.
  auto r = client.get("/hot");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);

  // The hot copy's availability value: when the stripe itself becomes
  // unreachable (two of its three slots down — beyond RAID5 tolerance),
  // the promoted copy on the fast provider still serves the read.
  reg.find("Rackspace")->set_online(false);  // data slot 0
  reg.find("AmazonS3")->set_online(false);   // parity slot
  auto hot_read = client.get("/hot");
  ASSERT_TRUE(hot_read.status.is_ok());
  EXPECT_EQ(hot_read.data, data);
  EXPECT_LT(hot_read.latency, normal_latency * 3);
  reg.find("Rackspace")->set_online(true);
  reg.find("AmazonS3")->set_online(true);

  // Overwriting invalidates the hot copy.
  client.put("/hot", common::patterned(4 << 20, 23));
  EXPECT_FALSE(client.has_hot_copy("/hot"));
}

TEST_F(HyRDClientTest, MetadataRebuildFromCloud) {
  client_->put("/d1/a", common::patterned(100, 24));
  client_->put("/d1/b", common::patterned(3 << 20, 25));
  client_->put("/d2/c", common::patterned(50, 26));

  // Simulate client machine loss: new client, same fleet.
  HyRDClient fresh(*session_);
  EXPECT_TRUE(fresh.list().empty());
  ASSERT_TRUE(fresh.rebuild_metadata_from_cloud().is_ok());
  EXPECT_EQ(fresh.list().size(), 3u);
  auto r = fresh.get("/d1/b");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, common::patterned(3 << 20, 25));
}

}  // namespace
}  // namespace hyrd::core
