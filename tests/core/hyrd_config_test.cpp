// HyRD configuration-space tests: geometry fallback, replication levels,
// thresholds, and evaluator edge cases.
#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "core/hyrd_client.h"

namespace hyrd::core {
namespace {

struct Fleet {
  Fleet() {
    cloud::install_standard_four(registry, 191);
    session = std::make_unique<gcs::MultiCloudSession>(registry);
  }
  cloud::CloudRegistry registry;
  std::unique_ptr<gcs::MultiCloudSession> session;
};

TEST(HyRDConfigTest, GeometryFallbackUsesAllProviders) {
  // k=3,m=1 needs 4 slots but only 3 providers are cost-oriented: the
  // dispatcher must fall back to the remaining provider.
  Fleet fleet;
  HyRDConfig config;
  config.geometry = {.k = 3, .m = 1};
  HyRDClient client(*fleet.session, config);
  ASSERT_EQ(client.shard_slots().size(), 4u);
  std::set<std::size_t> unique(client.shard_slots().begin(),
                               client.shard_slots().end());
  EXPECT_EQ(unique.size(), 4u);

  const auto data = common::patterned(3 << 20, 1);
  auto w = client.put("/f", data);
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.meta.locations.size(), 4u);
  auto r = client.get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST(HyRDConfigTest, ReplicationLevelThree) {
  Fleet fleet;
  HyRDConfig config;
  config.replication_level = 3;
  HyRDClient client(*fleet.session, config);
  auto w = client.put("/small", common::patterned(1000, 2));
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.meta.locations.size(), 3u);

  // Two concurrent outages of replica holders are now survivable.
  fleet.registry.find(w.meta.locations[0].provider)->set_online(false);
  fleet.registry.find(w.meta.locations[1].provider)->set_online(false);
  auto r = client.get("/small");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, common::patterned(1000, 2));
}

TEST(HyRDConfigTest, ReplicationLevelCappedAtFleetSize) {
  Fleet fleet;
  HyRDConfig config;
  config.replication_level = 9;
  HyRDClient client(*fleet.session, config);
  EXPECT_EQ(client.replica_targets().size(), 4u);
}

TEST(HyRDConfigTest, CustomThresholdRoutesAccordingly) {
  Fleet fleet;
  HyRDConfig config;
  config.large_file_threshold = 16 * 1024;
  HyRDClient client(*fleet.session, config);
  EXPECT_EQ(client.put("/a", common::patterned(8 * 1024, 3))
                .meta.redundancy,
            meta::RedundancyKind::kReplicated);
  EXPECT_EQ(client.put("/b", common::patterned(32 * 1024, 4))
                .meta.redundancy,
            meta::RedundancyKind::kErasure);
}

TEST(HyRDConfigTest, ZeroProbesStillConstructsAndWorks) {
  Fleet fleet;
  HyRDConfig config;
  config.evaluator_probes = 0;
  HyRDClient client(*fleet.session, config);
  const auto data = common::patterned(5000, 5);
  ASSERT_TRUE(client.put("/f", data).status.is_ok());
  auto r = client.get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST(HyRDConfigTest, EvaluatorCostChargedToProviders) {
  // The evaluator's probes are real operations: they must appear in the
  // providers' op counters (the paper's evaluator "directly interacts
  // with the individual cloud storage providers").
  Fleet fleet;
  HyRDClient client(*fleet.session);
  std::uint64_t probe_ops = 0;
  for (const auto& p : fleet.registry.all()) {
    probe_ops += p->counters().total_ops();
  }
  EXPECT_GT(probe_ops, 0u);
}

TEST(HyRDConfigTest, CustomContainersRespected) {
  Fleet fleet;
  HyRDConfig config;
  config.data_container = "my-data";
  config.meta_container = "my-meta";
  HyRDClient client(*fleet.session, config);
  client.put("/f", common::patterned(100, 6));
  auto* ali = fleet.registry.find("Aliyun");
  EXPECT_TRUE(ali->raw_store().container_exists("my-data"));
  EXPECT_TRUE(ali->raw_store().container_exists("my-meta"));
}

}  // namespace
}  // namespace hyrd::core
