#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "core/duracloud_client.h"
#include "core/racs_client.h"
#include "core/single_client.h"

namespace hyrd::core {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() {
    cloud::install_standard_four(registry_, 41);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
  }
  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
};

// ---------- RACS ----------

TEST_F(BaselineTest, RacsStripesEverythingEvenSmallFiles) {
  RACSClient racs(*session_);
  auto w = racs.put("/tiny", common::patterned(100, 1));
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.meta.redundancy, meta::RedundancyKind::kErasure);
  EXPECT_EQ(w.meta.locations.size(), 4u);
  auto r = racs.get("/tiny");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, common::patterned(100, 1));
}

TEST_F(BaselineTest, RacsRoundTripLargeFile) {
  RACSClient racs(*session_);
  const auto data = common::patterned(10 << 20, 2);
  ASSERT_TRUE(racs.put("/big", data).status.is_ok());
  auto r = racs.get("/big");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(BaselineTest, RacsParityRotatesAcrossObjects) {
  RACSClient racs(*session_);
  // Different paths hash to different rotation starts; across many
  // objects every provider must hold a parity fragment sometimes.
  std::set<std::string> parity_providers;
  for (int i = 0; i < 32; ++i) {
    auto w = racs.put("/f" + std::to_string(i), common::patterned(100, i));
    ASSERT_TRUE(w.status.is_ok());
    parity_providers.insert(w.meta.locations.back().provider);
  }
  EXPECT_EQ(parity_providers.size(), 4u);
}

TEST_F(BaselineTest, RacsOverwriteKeepsPlacement) {
  RACSClient racs(*session_);
  auto w1 = racs.put("/f", common::patterned(100, 3));
  auto w2 = racs.put("/f", common::patterned(200, 4));
  ASSERT_TRUE(w2.status.is_ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(w1.meta.locations[i].provider, w2.meta.locations[i].provider);
  }
  EXPECT_EQ(w2.meta.version, 2u);
}

TEST_F(BaselineTest, RacsDegradedReadDuringOutage) {
  RACSClient racs(*session_);
  const auto data = common::patterned(5 << 20, 5);
  racs.put("/big", data);
  registry_.find("WindowsAzure")->set_online(false);
  auto r = racs.get("/big");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(BaselineTest, RacsUpdateAndRemove) {
  RACSClient racs(*session_);
  const auto data = common::patterned(9 << 20, 6);
  racs.put("/big", data);
  const auto patch = common::patterned(4096, 7);
  auto u = racs.update("/big", 1000, patch);
  ASSERT_TRUE(u.status.is_ok());
  auto r = racs.get("/big");
  common::Bytes expected = data;
  std::copy(patch.begin(), patch.end(), expected.begin() + 1000);
  EXPECT_EQ(r.data, expected);

  ASSERT_TRUE(racs.remove("/big").status.is_ok());
  EXPECT_EQ(racs.get("/big").status.code(), common::StatusCode::kNotFound);
}

// ---------- DuraCloud ----------

TEST_F(BaselineTest, DuraCloudReplicatesOnItsPair) {
  DuraCloudClient dura(*session_);
  const auto data = common::patterned(5 << 20, 8);
  auto w = dura.put("/big", data);
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.meta.redundancy, meta::RedundancyKind::kReplicated);
  ASSERT_EQ(w.meta.locations.size(), 2u);
  EXPECT_EQ(w.meta.locations[0].provider, "WindowsAzure");
  EXPECT_EQ(w.meta.locations[1].provider, "Aliyun");
  // Full copies on both => stored bytes at least 2x the object.
  EXPECT_GE(registry_.find("WindowsAzure")->stored_bytes(), data.size());
  EXPECT_GE(registry_.find("Aliyun")->stored_bytes(), data.size());
  EXPECT_EQ(registry_.find("AmazonS3")->stored_bytes(), 0u);
}

TEST_F(BaselineTest, DuraCloudSurvivesOneOutage) {
  DuraCloudClient dura(*session_);
  const auto data = common::patterned(1 << 20, 9);
  dura.put("/f", data);
  registry_.find("Aliyun")->set_online(false);
  auto r = dura.get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(BaselineTest, DuraCloudWriteLatencyDropsDuringOutage) {
  // The paper's Fig. 6 observation: during an outage DuraCloud performs
  // *better* than normal because no double write happens. Its pair is
  // {Azure, Aliyun} and Azure is the slower of the two.
  DuraCloudClient dura(*session_);
  const auto data = common::patterned(2 << 20, 10);
  auto normal = dura.put("/n", data);
  registry_.find("WindowsAzure")->set_online(false);
  auto outage = dura.put("/o", data);
  ASSERT_TRUE(normal.status.is_ok());
  ASSERT_TRUE(outage.status.is_ok());
  EXPECT_LT(outage.latency, normal.latency);
}

TEST_F(BaselineTest, DuraCloudUpdateWholeAndPartial) {
  DuraCloudClient dura(*session_);
  dura.put("/f", common::patterned(10000, 11));
  auto whole = dura.update("/f", 0, common::patterned(10000, 12));
  ASSERT_TRUE(whole.status.is_ok());
  auto partial = dura.update("/f", 100, common::patterned(50, 13));
  ASSERT_TRUE(partial.status.is_ok());
  auto r = dura.get("/f");
  common::Bytes expected = common::patterned(10000, 12);
  const auto patch = common::patterned(50, 13);
  std::copy(patch.begin(), patch.end(), expected.begin() + 100);
  EXPECT_EQ(r.data, expected);
}

// ---------- Single cloud ----------

TEST_F(BaselineTest, SingleCloudStoresOnOneProviderOnly) {
  SingleCloudClient single(*session_, "AmazonS3");
  EXPECT_EQ(single.name(), "Single(AmazonS3)");
  const auto data = common::patterned(100000, 14);
  auto w = single.put("/f", data);
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.meta.locations.size(), 1u);
  EXPECT_GT(registry_.find("AmazonS3")->stored_bytes(), 0u);
  for (const auto& name : {"WindowsAzure", "Aliyun", "Rackspace"}) {
    EXPECT_EQ(registry_.find(name)->stored_bytes(), 0u) << name;
  }
  auto r = single.get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(BaselineTest, SingleCloudOutageMeansUnavailable) {
  // The vendor lock-in failure mode that motivates the paper.
  SingleCloudClient single(*session_, "AmazonS3");
  single.put("/f", common::patterned(100, 15));
  registry_.find("AmazonS3")->set_online(false);
  EXPECT_EQ(single.get("/f").status.code(),
            common::StatusCode::kUnavailable);
  EXPECT_EQ(single.put("/g", common::patterned(10, 16)).status.code(),
            common::StatusCode::kUnavailable);
}

TEST_F(BaselineTest, SingleCloudRecoversAfterTransientOutage) {
  SingleCloudClient single(*session_, "Aliyun");
  const auto data = common::patterned(100, 17);
  single.put("/f", data);
  registry_.find("Aliyun")->set_online(false);
  registry_.find("Aliyun")->set_online(true);
  single.on_provider_restored("Aliyun");
  auto r = single.get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(BaselineTest, SchemesAgreeOnContent) {
  // Same logical operations through all four schemes produce identical
  // user-visible data.
  RACSClient racs(*session_);
  DuraCloudClient dura(*session_);
  SingleCloudClient single(*session_, "Aliyun");

  const auto data = common::patterned(3 << 20, 18);
  for (core::StorageClient* c :
       std::vector<core::StorageClient*>{&racs, &dura, &single}) {
    ASSERT_TRUE(c->put("/shared", data).status.is_ok()) << c->name();
    auto r = c->get("/shared");
    ASSERT_TRUE(r.status.is_ok()) << c->name();
    EXPECT_EQ(r.data, data) << c->name();
  }
}

}  // namespace
}  // namespace hyrd::core
