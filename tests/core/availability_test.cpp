#include "core/availability.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cloud/profiles.h"
#include "core/hyrd_client.h"
#include "core/racs_client.h"
#include "core/single_client.h"

namespace hyrd::core {
namespace {

TEST(Availability, KOfNDegenerateCases) {
  const std::vector<double> p = {0.9, 0.9, 0.9};
  EXPECT_DOUBLE_EQ(k_of_n_availability(p, 0), 1.0);  // always available
  // k = n: all must be up.
  EXPECT_NEAR(k_of_n_availability(p, 3), 0.9 * 0.9 * 0.9, 1e-12);
  // k > n: impossible.
  EXPECT_DOUBLE_EQ(k_of_n_availability(p, 4), 0.0);
}

TEST(Availability, ReplicationClosedForm) {
  // 1 of r with identical p: 1 - (1-p)^r.
  for (double p : {0.5, 0.9, 0.99}) {
    const std::vector<double> two(2, p);
    EXPECT_NEAR(replication_availability(two), 1.0 - (1.0 - p) * (1.0 - p),
                1e-12);
  }
}

TEST(Availability, Raid5ClosedForm) {
  // 3 of 4 with identical p: p^4 + 4 p^3 (1-p).
  const double p = 0.95;
  const std::vector<double> four(4, p);
  EXPECT_NEAR(k_of_n_availability(four, 3),
              std::pow(p, 4) + 4 * std::pow(p, 3) * (1 - p), 1e-12);
}

TEST(Availability, HeterogeneousProbabilities) {
  // 1 of 2 with p1, p2: 1 - (1-p1)(1-p2).
  const std::vector<double> p = {0.9, 0.6};
  EXPECT_NEAR(k_of_n_availability(p, 1), 1.0 - 0.1 * 0.4, 1e-12);
}

TEST(Availability, EverySchemeBeatsSingleCloud) {
  // The paper's core claim: Cloud-of-Clouds redundancy improves
  // availability over any single provider.
  for (double p : {0.90, 0.95, 0.99, 0.999}) {
    const auto a = analytic_availability(p);
    EXPECT_GT(a.duracloud, a.single) << p;
    EXPECT_GT(a.racs, a.single) << p;
    EXPECT_GT(a.hyrd_small, a.single) << p;
    EXPECT_GT(a.hyrd_large, a.single) << p;
    EXPECT_GT(a.hyrd_overall(0.8), a.single) << p;
  }
}

TEST(Availability, NinesConversion) {
  EXPECT_NEAR(nines(0.9), 1.0, 1e-9);
  EXPECT_NEAR(nines(0.999), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(nines(0.0), 0.0);
  EXPECT_DOUBLE_EQ(nines(1.0), 16.0);
}

TEST(Availability, MonteCarloMatchesAnalyticForHyRD) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 83);
  gcs::MultiCloudSession session(registry);
  HyRDClient client(session);
  client.put("/small", common::patterned(4096, 1));
  client.put("/large", common::patterned(2 << 20, 2));

  const double p = 0.9;
  auto measured = measure_read_availability(registry, client,
                                            {"/small", "/large"}, p,
                                            /*trials=*/2000, /*seed=*/7);
  // Both must be readable: P = P(1of2) weighted with P(2of3) but the slot
  // sets overlap (Aliyun is in both), so bound by the analytic pieces.
  const auto a = analytic_availability(p);
  const double independent_lower = a.hyrd_small * a.hyrd_large;
  const double upper = std::min(a.hyrd_small, a.hyrd_large);
  EXPECT_GE(measured.availability(), independent_lower - 0.03);
  EXPECT_LE(measured.availability(), upper + 0.03);
  EXPECT_GT(measured.availability(), p);  // beats any single cloud
}

TEST(Availability, MonteCarloSingleCloudMatchesP) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 89);
  gcs::MultiCloudSession session(registry);
  SingleCloudClient client(session, "Aliyun");
  client.put("/f", common::patterned(1000, 3));

  auto measured = measure_read_availability(registry, client, {"/f"}, 0.8,
                                            2000, 11);
  EXPECT_NEAR(measured.availability(), 0.8, 0.03);
}

TEST(Availability, MonteCarloRacsMatchesThreeOfFour) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 97);
  gcs::MultiCloudSession session(registry);
  RACSClient client(session);
  client.put("/f", common::patterned(100 * 1024, 4));

  const double p = 0.85;
  auto measured =
      measure_read_availability(registry, client, {"/f"}, p, 2000, 13);
  const double analytic = k_of_n_availability(std::vector<double>(4, p), 3);
  EXPECT_NEAR(measured.availability(), analytic, 0.03);
}

TEST(Availability, ProvidersRestoredAfterMeasurement) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 101);
  gcs::MultiCloudSession session(registry);
  SingleCloudClient client(session, "Aliyun");
  client.put("/f", common::patterned(10, 5));
  measure_read_availability(registry, client, {"/f"}, 0.5, 100, 17);
  EXPECT_EQ(registry.online().size(), 4u);
}

}  // namespace
}  // namespace hyrd::core
