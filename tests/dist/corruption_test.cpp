// Silent-corruption recovery: per-fragment CRCs let the erasure read path
// pinpoint a corrupted fragment and reconstruct through it (the integrity
// property HAIL-style systems — cited by the paper — provide).
#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "core/hyrd_client.h"
#include "core/racs_client.h"
#include "dist/erasure_scheme.h"

namespace hyrd::dist {
namespace {

class CorruptionTest : public ::testing::Test {
 protected:
  CorruptionTest() : scheme_("data", {.k = 3, .m = 1}) {
    cloud::install_standard_four(registry_, 131);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
    session_->ensure_container_everywhere("data");
    slots_ = {session_->index_of("Rackspace"), session_->index_of("Aliyun"),
              session_->index_of("WindowsAzure"),
              session_->index_of("AmazonS3")};
  }

  void corrupt_fragment(const meta::FileMeta& m, std::size_t slot) {
    auto* provider = registry_.find(m.locations[slot].provider);
    auto current = provider->raw_store().get("data",
                                             m.locations[slot].object_name);
    ASSERT_TRUE(current.is_ok());
    common::Bytes bad = current.value().to_bytes();
    bad[bad.size() / 2] ^= 0xFF;
    provider->raw_store().put("data", m.locations[slot].object_name, bad);
  }

  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
  ErasureScheme scheme_;
  std::vector<std::size_t> slots_;
};

TEST_F(CorruptionTest, WriteRecordsPerFragmentDigests) {
  auto w = scheme_.write(*session_, "/f", common::patterned(3000, 1), slots_);
  ASSERT_TRUE(w.status.is_ok());
  ASSERT_EQ(w.meta.fragment_crcs.size(), 4u);
  for (std::uint32_t crc : w.meta.fragment_crcs) EXPECT_NE(crc, 0u);
}

TEST_F(CorruptionTest, CorruptDataFragmentIsReconstructedThrough) {
  const auto data = common::patterned(2 << 20, 2);
  auto w = scheme_.write(*session_, "/f", data, slots_);
  ASSERT_TRUE(w.status.is_ok());

  for (std::size_t slot = 0; slot < 3; ++slot) {
    auto fresh = scheme_.write(*session_, "/f" + std::to_string(slot), data,
                               slots_);
    corrupt_fragment(fresh.meta, slot);
    auto r = scheme_.read(*session_, fresh.meta);
    ASSERT_TRUE(r.status.is_ok()) << "slot " << slot;
    EXPECT_TRUE(r.degraded) << "slot " << slot;
    EXPECT_EQ(r.data, data) << "slot " << slot;
  }
}

TEST_F(CorruptionTest, CorruptParityHarmlessOnNormalRead) {
  const auto data = common::patterned(1 << 20, 3);
  auto w = scheme_.write(*session_, "/f", data, slots_);
  corrupt_fragment(w.meta, 3);  // parity slot
  auto r = scheme_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_FALSE(r.degraded);  // data fragments intact; parity never touched
  EXPECT_EQ(r.data, data);
}

TEST_F(CorruptionTest, CorruptionPlusOutageExceedsTolerance) {
  const auto data = common::patterned(1 << 20, 4);
  auto w = scheme_.write(*session_, "/f", data, slots_);
  corrupt_fragment(w.meta, 0);
  registry_.find(w.meta.locations[1].provider)->set_online(false);
  auto r = scheme_.read(*session_, w.meta);
  // One erasure (outage) + one corruption > m=1 tolerance.
  EXPECT_EQ(r.status.code(), common::StatusCode::kDataLoss);
}

TEST_F(CorruptionTest, RebuildRefusesCorruptSurvivors) {
  const auto data = common::patterned(1 << 20, 5);
  auto w = scheme_.write(*session_, "/f", data, slots_);
  corrupt_fragment(w.meta, 1);
  // Rebuilding slot 0's fragment must not silently use the corrupt slot 1;
  // with slot 1 discarded only 2 intact fragments + target remain => k=3
  // reachable (slots 2,3 + corrupt 1 discarded) -> only 2 present -> fails.
  auto rebuilt =
      scheme_.rebuild_fragments_for(*session_, w.meta,
                                    w.meta.locations[0].provider, nullptr);
  EXPECT_FALSE(rebuilt.is_ok());
}

TEST_F(CorruptionTest, HyRDEndToEndSurvivesFragmentCorruption) {
  cloud::CloudRegistry reg;
  cloud::install_standard_four(reg, 137);
  gcs::MultiCloudSession session(reg);
  core::HyRDClient client(session);

  const auto data = common::patterned(4 << 20, 6);
  auto w = client.put("/big", data);
  ASSERT_TRUE(w.status.is_ok());

  // Corrupt the first data fragment directly in the provider's store.
  auto* provider = reg.find(w.meta.locations[0].provider);
  auto frag = provider->raw_store().get("hyrd-data",
                                        w.meta.locations[0].object_name);
  ASSERT_TRUE(frag.is_ok());
  common::Bytes bad = frag.value().to_bytes();
  bad[0] ^= 0x01;
  provider->raw_store().put("hyrd-data", w.meta.locations[0].object_name,
                            bad);

  auto r = client.get("/big");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.data, data);
}

TEST_F(CorruptionTest, FragmentCrcsSerializeInMetadataBlocks) {
  meta::MetadataStore store;
  auto w = scheme_.write(*session_, "/d/f", common::patterned(5000, 7),
                         slots_);
  store.upsert(w.meta);
  const auto block = store.serialize_directory("/d");
  meta::MetadataStore other;
  ASSERT_TRUE(other.load_directory_block(block).is_ok());
  EXPECT_EQ(other.lookup("/d/f")->fragment_crcs, w.meta.fragment_crcs);
}

}  // namespace
}  // namespace hyrd::dist
