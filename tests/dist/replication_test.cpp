#include "dist/replication.h"

#include <gtest/gtest.h>

#include "cloud/profiles.h"

namespace hyrd::dist {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() : scheme_("data") {
    cloud::install_standard_four(registry_, 7);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
    session_->ensure_container_everywhere("data");
  }

  std::size_t idx(const std::string& name) { return session_->index_of(name); }

  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
  ReplicationScheme scheme_;
};

TEST_F(ReplicationTest, WriteCreatesOneObjectPerReplica) {
  const auto data = common::patterned(4096, 1);
  auto r = scheme_.write(*session_, "/f", data,
                         {idx("Aliyun"), idx("WindowsAzure")});
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.meta.locations.size(), 2u);
  EXPECT_EQ(r.meta.redundancy, meta::RedundancyKind::kReplicated);
  EXPECT_EQ(r.meta.size, 4096u);
  EXPECT_EQ(registry_.find("Aliyun")->object_count(), 1u);
  EXPECT_EQ(registry_.find("WindowsAzure")->object_count(), 1u);
  EXPECT_EQ(registry_.find("AmazonS3")->object_count(), 0u);
}

TEST_F(ReplicationTest, ReadReturnsExactData) {
  const auto data = common::patterned(10000, 2);
  auto w = scheme_.write(*session_, "/f", data,
                         {idx("Aliyun"), idx("WindowsAzure")});
  ASSERT_TRUE(w.status.is_ok());
  auto r = scheme_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
  EXPECT_FALSE(r.degraded);
}

TEST_F(ReplicationTest, ReadPrefersFastestProvider) {
  const auto data = common::patterned(1000, 3);
  auto w = scheme_.write(*session_, "/f", data,
                         {idx("Rackspace"), idx("Aliyun")});
  ASSERT_TRUE(w.status.is_ok());
  registry_.find("Aliyun")->reset_counters();
  registry_.find("Rackspace")->reset_counters();
  auto r = scheme_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(registry_.find("Aliyun")->counters().gets, 1u);
  EXPECT_EQ(registry_.find("Rackspace")->counters().gets, 0u);
}

TEST_F(ReplicationTest, ReadFailsOverWhenFastestIsDown) {
  const auto data = common::patterned(1000, 4);
  auto w = scheme_.write(*session_, "/f", data,
                         {idx("Aliyun"), idx("WindowsAzure")});
  ASSERT_TRUE(w.status.is_ok());
  registry_.find("Aliyun")->set_online(false);
  auto r = scheme_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
  EXPECT_TRUE(r.degraded);
}

TEST_F(ReplicationTest, ReadFailsWhenAllReplicasDown) {
  auto w = scheme_.write(*session_, "/f", common::patterned(10, 5),
                         {idx("Aliyun"), idx("WindowsAzure")});
  registry_.find("Aliyun")->set_online(false);
  registry_.find("WindowsAzure")->set_online(false);
  auto r = scheme_.read(*session_, w.meta);
  EXPECT_EQ(r.status.code(), common::StatusCode::kUnavailable);
}

TEST_F(ReplicationTest, WriteDuringOutageSucceedsAndReportsUnreachable) {
  registry_.find("WindowsAzure")->set_online(false);
  std::vector<std::string> unreachable;
  auto w = scheme_.write(*session_, "/f", common::patterned(100, 6),
                         {idx("Aliyun"), idx("WindowsAzure")}, &unreachable);
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(unreachable, std::vector<std::string>{"WindowsAzure"});
  // Both locations are still recorded for later consistency update.
  EXPECT_EQ(w.meta.locations.size(), 2u);
}

TEST_F(ReplicationTest, WriteFailsWhenNoTargetReachable) {
  registry_.find("Aliyun")->set_online(false);
  registry_.find("WindowsAzure")->set_online(false);
  std::vector<std::string> unreachable;
  auto w = scheme_.write(*session_, "/f", common::patterned(100, 7),
                         {idx("Aliyun"), idx("WindowsAzure")}, &unreachable);
  EXPECT_EQ(w.status.code(), common::StatusCode::kUnavailable);
  EXPECT_EQ(unreachable.size(), 2u);
}

TEST_F(ReplicationTest, WriteRejectsEmptyTargets) {
  auto w = scheme_.write(*session_, "/f", common::patterned(10, 8), {});
  EXPECT_EQ(w.status.code(), common::StatusCode::kInvalidArgument);
}

TEST_F(ReplicationTest, StaleReplicaSkippedByCrc) {
  const auto data = common::patterned(500, 9);
  auto w = scheme_.write(*session_, "/f", data,
                         {idx("Aliyun"), idx("WindowsAzure")});
  ASSERT_TRUE(w.status.is_ok());
  // Corrupt the Aliyun (fastest) replica directly.
  auto* ali = registry_.find("Aliyun");
  ali->raw_store().put("data", w.meta.locations[0].object_name,
                       common::patterned(500, 999));
  auto r = scheme_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
  EXPECT_TRUE(r.degraded);
}

TEST_F(ReplicationTest, RemoveDeletesAllReplicas) {
  auto w = scheme_.write(*session_, "/f", common::patterned(100, 10),
                         {idx("Aliyun"), idx("WindowsAzure")});
  auto rm = scheme_.remove(*session_, w.meta);
  EXPECT_TRUE(rm.status.is_ok());
  EXPECT_TRUE(rm.unreachable_providers.empty());
  EXPECT_EQ(registry_.find("Aliyun")->object_count(), 0u);
  EXPECT_EQ(registry_.find("WindowsAzure")->object_count(), 0u);
}

TEST_F(ReplicationTest, RemoveReportsUnreachableProvider) {
  auto w = scheme_.write(*session_, "/f", common::patterned(100, 11),
                         {idx("Aliyun"), idx("WindowsAzure")});
  registry_.find("WindowsAzure")->set_online(false);
  auto rm = scheme_.remove(*session_, w.meta);
  EXPECT_TRUE(rm.status.is_ok());
  EXPECT_EQ(rm.unreachable_providers,
            std::vector<std::string>{"WindowsAzure"});
}

TEST_F(ReplicationTest, WriteLatencyIsMaxOfReplicas) {
  // A Rackspace+Aliyun pair must cost at least as much as Rackspace alone.
  const auto data = common::patterned(500000, 12);
  auto pair_w = scheme_.write(*session_, "/p", data,
                              {idx("Rackspace"), idx("Aliyun")});
  auto solo_w = scheme_.write(*session_, "/s", data, {idx("Aliyun")});
  ASSERT_TRUE(pair_w.status.is_ok());
  ASSERT_TRUE(solo_w.status.is_ok());
  EXPECT_GT(pair_w.latency, solo_w.latency);
}

}  // namespace
}  // namespace hyrd::dist
