// ReplicationScheme::update_range — the zero-read small-update path the
// paper contrasts with erasure coding's 2R+2W — plus write-mode semantics.
#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "dist/replication.h"

namespace hyrd::dist {
namespace {

class ReplicationUpdateTest : public ::testing::Test {
 protected:
  ReplicationUpdateTest() : scheme_("data") {
    cloud::install_standard_four(registry_, 29);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
    session_->ensure_container_everywhere("data");
  }
  std::size_t idx(const std::string& n) { return session_->index_of(n); }

  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
  ReplicationScheme scheme_;
};

TEST_F(ReplicationUpdateTest, PatchesEveryReplicaWithZeroReads) {
  const auto data = common::patterned(8192, 1);
  auto w = scheme_.write(*session_, "/f", data,
                         {idx("Aliyun"), idx("WindowsAzure")});
  ASSERT_TRUE(w.status.is_ok());
  for (const auto& p : registry_.all()) p->reset_counters();

  const auto patch = common::patterned(512, 2);
  auto u = scheme_.update_range(*session_, w.meta, 100, patch);
  ASSERT_TRUE(u.status.is_ok());

  std::uint64_t gets = 0, puts = 0;
  for (const auto& p : registry_.all()) {
    gets += p->counters().gets;
    puts += p->counters().puts;
  }
  EXPECT_EQ(gets, 0u);  // the paper's point: replication updates don't read
  EXPECT_EQ(puts, 2u);  // one block write per replica

  auto r = scheme_.read(*session_, u.meta);
  ASSERT_TRUE(r.status.is_ok());
  common::Bytes expected = data;
  std::copy(patch.begin(), patch.end(), expected.begin() + 100);
  EXPECT_EQ(r.data, expected);
}

TEST_F(ReplicationUpdateTest, VersionBumpsAndCrcCleared) {
  auto w = scheme_.write(*session_, "/f", common::patterned(1000, 3),
                         {idx("Aliyun"), idx("WindowsAzure")});
  auto u = scheme_.update_range(*session_, w.meta, 0,
                                common::patterned(10, 4));
  ASSERT_TRUE(u.status.is_ok());
  EXPECT_EQ(u.meta.version, w.meta.version + 1);
  EXPECT_EQ(u.meta.crc, 0u);
}

TEST_F(ReplicationUpdateTest, RejectsGrowingUpdate) {
  auto w = scheme_.write(*session_, "/f", common::patterned(100, 5),
                         {idx("Aliyun"), idx("WindowsAzure")});
  auto u = scheme_.update_range(*session_, w.meta, 95,
                                common::patterned(10, 6));
  EXPECT_EQ(u.status.code(), common::StatusCode::kInvalidArgument);
}

TEST_F(ReplicationUpdateTest, OutageReportsUnreachableAndProceeds) {
  auto w = scheme_.write(*session_, "/f", common::patterned(1000, 7),
                         {idx("Aliyun"), idx("WindowsAzure")});
  registry_.find("WindowsAzure")->set_online(false);
  std::vector<std::string> unreachable;
  auto u = scheme_.update_range(*session_, w.meta, 10,
                                common::patterned(100, 8), &unreachable);
  ASSERT_TRUE(u.status.is_ok());
  EXPECT_EQ(unreachable, std::vector<std::string>{"WindowsAzure"});
}

TEST_F(ReplicationUpdateTest, AllReplicasDownFails) {
  auto w = scheme_.write(*session_, "/f", common::patterned(1000, 9),
                         {idx("Aliyun"), idx("WindowsAzure")});
  registry_.find("Aliyun")->set_online(false);
  registry_.find("WindowsAzure")->set_online(false);
  auto u = scheme_.update_range(*session_, w.meta, 0,
                                common::patterned(10, 10));
  EXPECT_EQ(u.status.code(), common::StatusCode::kUnavailable);
}

TEST_F(ReplicationUpdateTest, SequentialModeSumsWriteLatency) {
  ReplicationScheme parallel("data", ReplicaWriteMode::kParallel);
  ReplicationScheme sequential("data", ReplicaWriteMode::kSequential);
  const auto data = common::patterned(400 * 1024, 11);
  const std::vector<std::size_t> targets = {idx("Aliyun"),
                                            idx("WindowsAzure")};
  auto wp = parallel.write(*session_, "/p", data, targets);
  auto ws = sequential.write(*session_, "/s", data, targets);
  ASSERT_TRUE(wp.status.is_ok());
  ASSERT_TRUE(ws.status.is_ok());
  // Sequential ~= sum of both writes; parallel ~= the slower one.
  EXPECT_GT(ws.latency, wp.latency);
  EXPECT_GT(ws.latency, wp.latency * 5 / 4);
}

TEST_F(ReplicationUpdateTest, SequentialModeImprovesDuringOutage) {
  // The DuraCloud effect: with one copy unreachable, the synchronized
  // write skips it and completes faster than the healthy double write.
  ReplicationScheme sequential("data", ReplicaWriteMode::kSequential);
  const auto data = common::patterned(1 << 20, 12);
  const std::vector<std::size_t> targets = {idx("WindowsAzure"),
                                            idx("Aliyun")};
  auto normal = sequential.write(*session_, "/n", data, targets);
  registry_.find("WindowsAzure")->set_online(false);
  std::vector<std::string> unreachable;
  auto outage = sequential.write(*session_, "/o", data, targets, &unreachable);
  ASSERT_TRUE(normal.status.is_ok());
  ASSERT_TRUE(outage.status.is_ok());
  EXPECT_LT(outage.latency, normal.latency);
  EXPECT_EQ(unreachable.size(), 1u);
}

}  // namespace
}  // namespace hyrd::dist
