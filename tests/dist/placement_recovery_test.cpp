#include <gtest/gtest.h>

#include <set>

#include "cloud/profiles.h"
#include "dist/placement.h"
#include "dist/recovery.h"

namespace hyrd::dist {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest() {
    cloud::install_standard_four(registry_, 3);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
  }
  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
};

TEST_F(PlacementTest, RoundRobinRotatesStart) {
  RoundRobinPlacement rr;
  const auto a = rr.shards(*session_, 4);
  const auto b = rr.shards(*session_, 4);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_NE(a, b);  // rotation moved
  EXPECT_EQ(std::set<std::size_t>(a.begin(), a.end()).size(), 4u);
  // Slot order is a rotation: b starts one past a.
  EXPECT_EQ(b[0], (a[0] + 1) % 4);
}

TEST_F(PlacementTest, RoundRobinCapsAtProviderCount) {
  RoundRobinPlacement rr;
  EXPECT_EQ(rr.replicas(*session_, 10).size(), 4u);
}

TEST_F(PlacementTest, CategoryReplicasAreFastestProviders) {
  CategoryPlacement cat;
  const auto targets = cat.replicas(*session_, 2);
  ASSERT_EQ(targets.size(), 2u);
  // Aliyun is fastest, Azure second (profile calibration).
  EXPECT_EQ(session_->client(targets[0]).provider_name(), "Aliyun");
  EXPECT_EQ(session_->client(targets[1]).provider_name(), "WindowsAzure");
}

TEST_F(PlacementTest, CategoryShardsPutParityOnMostExpensive) {
  CategoryPlacement cat;
  const auto slots = cat.shards(*session_, 4);
  ASSERT_EQ(slots.size(), 4u);
  // Cost score = storage + egress: Rackspace .13 < Aliyun .152 <
  // Azure .157 < AmazonS3 .234. Parity (last slot) lands on S3.
  EXPECT_EQ(session_->client(slots[0]).provider_name(), "Rackspace");
  EXPECT_EQ(session_->client(slots[3]).provider_name(), "AmazonS3");
}

TEST_F(PlacementTest, CategoryIsDeterministic) {
  CategoryPlacement cat;
  EXPECT_EQ(cat.replicas(*session_, 2), cat.replicas(*session_, 2));
  EXPECT_EQ(cat.shards(*session_, 4), cat.shards(*session_, 4));
}

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest()
      : replication_("data"), erasure_("data", {.k = 3, .m = 1}) {
    cloud::install_standard_four(registry_, 5);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
    session_->ensure_container_everywhere("data");
    recovery_ = std::make_unique<RecoveryManager>(*session_, store_, log_,
                                                  replication_, erasure_);
  }

  std::size_t idx(const std::string& n) { return session_->index_of(n); }

  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
  meta::MetadataStore store_;
  meta::UpdateLog log_;
  ReplicationScheme replication_;
  ErasureScheme erasure_;
  std::unique_ptr<RecoveryManager> recovery_;
};

TEST_F(RecoveryTest, ResyncRepushesReplicatedObject) {
  // Write while Azure is down; its replica is missing.
  registry_.find("WindowsAzure")->set_online(false);
  std::vector<std::string> unreachable;
  const auto data = common::patterned(2048, 1);
  auto w = replication_.write(*session_, "/f", data,
                              {idx("Aliyun"), idx("WindowsAzure")},
                              &unreachable);
  ASSERT_TRUE(w.status.is_ok());
  store_.upsert(w.meta);
  for (const auto& loc : w.meta.locations) {
    if (loc.provider == "WindowsAzure") {
      log_.append("WindowsAzure", "data", "/f", loc.object_name,
                  meta::LogAction::kPut);
    }
  }

  registry_.find("WindowsAzure")->set_online(true);
  auto report = recovery_->resync("WindowsAzure");
  ASSERT_TRUE(report.status.is_ok());
  EXPECT_EQ(report.objects_repushed, 1u);
  EXPECT_EQ(report.bytes_pushed, 2048u);
  EXPECT_TRUE(log_.pending_for("WindowsAzure").empty());

  // Azure now serves the replica by itself.
  registry_.find("Aliyun")->set_online(false);
  auto r = replication_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(RecoveryTest, ResyncRebuildsErasureFragment) {
  registry_.find("AmazonS3")->set_online(false);
  std::vector<std::string> unreachable;
  const auto data = common::patterned(3 << 20, 2);
  const std::vector<std::size_t> slots = {idx("Rackspace"), idx("Aliyun"),
                                          idx("WindowsAzure"),
                                          idx("AmazonS3")};
  auto w = erasure_.write(*session_, "/big", data, slots, &unreachable);
  ASSERT_TRUE(w.status.is_ok());
  store_.upsert(w.meta);
  for (const auto& loc : w.meta.locations) {
    if (loc.provider == "AmazonS3") {
      log_.append("AmazonS3", "data", "/big", loc.object_name,
                  meta::LogAction::kPut);
    }
  }

  registry_.find("AmazonS3")->set_online(true);
  auto report = recovery_->resync("AmazonS3");
  ASSERT_TRUE(report.status.is_ok());
  EXPECT_EQ(report.objects_repushed, 1u);

  // The rebuilt parity must make single-failure reads work again.
  registry_.find("Aliyun")->set_online(false);
  auto r = erasure_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(RecoveryTest, ResyncAppliesLoggedRemoves) {
  const auto data = common::patterned(512, 3);
  auto w = replication_.write(*session_, "/f", data,
                              {idx("Aliyun"), idx("WindowsAzure")});
  ASSERT_TRUE(w.status.is_ok());

  // Azure goes down; the file is removed meanwhile.
  registry_.find("WindowsAzure")->set_online(false);
  auto rm = replication_.remove(*session_, w.meta);
  for (const auto& p : rm.unreachable_providers) {
    for (const auto& loc : w.meta.locations) {
      if (loc.provider == p) {
        log_.append(p, "data", "/f", loc.object_name, meta::LogAction::kRemove);
      }
    }
  }
  registry_.find("WindowsAzure")->set_online(true);
  EXPECT_EQ(registry_.find("WindowsAzure")->object_count(), 1u);  // stale

  auto report = recovery_->resync("WindowsAzure");
  ASSERT_TRUE(report.status.is_ok());
  EXPECT_EQ(report.removes_applied, 1u);
  EXPECT_EQ(registry_.find("WindowsAzure")->object_count(), 0u);
}

TEST_F(RecoveryTest, ResyncSkipsDeletedFiles) {
  registry_.find("WindowsAzure")->set_online(false);
  const auto data = common::patterned(100, 4);
  auto w = replication_.write(*session_, "/f", data,
                              {idx("Aliyun"), idx("WindowsAzure")});
  store_.upsert(w.meta);
  log_.append("WindowsAzure", "data", "/f", w.meta.locations[1].object_name,
              meta::LogAction::kPut);
  // File deleted before the provider returns; its meta is gone.
  store_.erase("/f");

  registry_.find("WindowsAzure")->set_online(true);
  auto report = recovery_->resync("WindowsAzure");
  ASSERT_TRUE(report.status.is_ok());
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.objects_repushed, 0u);
}

TEST_F(RecoveryTest, ResyncUsesBlockRegenerator) {
  recovery_->set_block_regenerator(
      [](const std::string& path) -> std::optional<common::Bytes> {
        if (path == "synthetic:blk") return common::bytes_of("regenerated");
        return std::nullopt;
      });
  log_.append("Aliyun", "data", "synthetic:blk", "blk-object",
              meta::LogAction::kPut);
  auto report = recovery_->resync("Aliyun");
  ASSERT_TRUE(report.status.is_ok());
  EXPECT_EQ(report.objects_repushed, 1u);
  auto got = registry_.find("Aliyun")->get({"data", "blk-object"});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(common::to_string(got.data), "regenerated");
}

TEST_F(RecoveryTest, ResyncFailsWhileProviderStillOffline) {
  registry_.find("Aliyun")->set_online(false);
  auto report = recovery_->resync("Aliyun");
  EXPECT_EQ(report.status.code(), common::StatusCode::kFailedPrecondition);
}

TEST_F(RecoveryTest, ResyncUnknownProviderFails) {
  auto report = recovery_->resync("Nimbus");
  EXPECT_EQ(report.status.code(), common::StatusCode::kInvalidArgument);
}

TEST_F(RecoveryTest, ResyncEmptyLogIsCleanNoop) {
  auto report = recovery_->resync("Aliyun");
  EXPECT_TRUE(report.status.is_ok());
  EXPECT_EQ(report.objects_repushed, 0u);
  EXPECT_EQ(report.removes_applied, 0u);
}

}  // namespace
}  // namespace hyrd::dist
