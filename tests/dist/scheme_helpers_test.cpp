#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "dist/scheme.h"

namespace hyrd::dist {
namespace {

TEST(FragmentNaming, DeterministicAndDistinct) {
  const std::string a0 = fragment_object_name("/a", 'r', 0);
  EXPECT_EQ(a0, fragment_object_name("/a", 'r', 0));
  EXPECT_NE(a0, fragment_object_name("/a", 'r', 1));
  EXPECT_NE(a0, fragment_object_name("/a", 's', 0));
  EXPECT_NE(a0, fragment_object_name("/b", 'r', 0));
}

TEST(FragmentNaming, SuffixEncodesKindAndIndex) {
  EXPECT_TRUE(fragment_object_name("/x", 's', 3).ends_with(".s3"));
  EXPECT_TRUE(fragment_object_name("/x", 'r', 12).ends_with(".r12"));
}

TEST(FragmentNaming, ProviderSafeCharacters) {
  const std::string name = fragment_object_name("/weird päth/ name?", 'q', 0);
  for (char c : name) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '.')
        << c;
  }
}

class LatencyOrderTest : public ::testing::Test {
 protected:
  LatencyOrderTest() {
    cloud::install_standard_four(registry_, 271);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
  }
  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
};

TEST_F(LatencyOrderTest, OrdersByExpectedLatency) {
  const auto order = order_by_expected_read_latency(*session_, {0, 1, 2, 3},
                                                    64 * 1024);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(session_->client(order[0]).provider_name(), "Aliyun");
  EXPECT_EQ(session_->client(order[1]).provider_name(), "WindowsAzure");
  // Cross-Pacific providers at the back.
  EXPECT_EQ(session_->client(order[3]).provider_name(), "Rackspace");
}

TEST_F(LatencyOrderTest, SubsetPreserved) {
  const std::size_t s3 = session_->index_of("AmazonS3");
  const std::size_t rack = session_->index_of("Rackspace");
  const auto order =
      order_by_expected_read_latency(*session_, {rack, s3}, 4096);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], s3);  // S3 faster than Rackspace at small sizes
  EXPECT_EQ(order[1], rack);
}

TEST_F(LatencyOrderTest, EmptyInputEmptyOutput) {
  EXPECT_TRUE(order_by_expected_read_latency(*session_, {}, 4096).empty());
}

}  // namespace
}  // namespace hyrd::dist
