#include "dist/erasure_scheme.h"

#include <gtest/gtest.h>

#include "cloud/profiles.h"

namespace hyrd::dist {
namespace {

class ErasureSchemeTest : public ::testing::Test {
 protected:
  ErasureSchemeTest() : scheme_("data", {.k = 3, .m = 1}) {
    cloud::install_standard_four(registry_, 13);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
    session_->ensure_container_everywhere("data");
    slots_ = {session_->index_of("Rackspace"), session_->index_of("Aliyun"),
              session_->index_of("WindowsAzure"),
              session_->index_of("AmazonS3")};
  }

  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
  ErasureScheme scheme_;
  std::vector<std::size_t> slots_;
};

TEST_F(ErasureSchemeTest, WritePlacesOneFragmentPerSlot) {
  auto w = scheme_.write(*session_, "/big", common::patterned(3 << 20, 1),
                         slots_);
  ASSERT_TRUE(w.status.is_ok());
  EXPECT_EQ(w.meta.redundancy, meta::RedundancyKind::kErasure);
  EXPECT_EQ(w.meta.locations.size(), 4u);
  EXPECT_EQ(w.meta.stripe_k, 3u);
  EXPECT_EQ(w.meta.stripe_m, 1u);
  EXPECT_EQ(w.meta.shard_size, (3u << 20) / 3);
  for (const auto& p : registry_.all()) {
    EXPECT_EQ(p->object_count(), 1u) << p->name();
  }
}

TEST_F(ErasureSchemeTest, WriteRejectsWrongTargetCount) {
  auto w = scheme_.write(*session_, "/big", common::patterned(100, 1),
                         {0, 1, 2});
  EXPECT_EQ(w.status.code(), common::StatusCode::kInvalidArgument);
}

TEST_F(ErasureSchemeTest, NormalReadTouchesOnlyDataFragments) {
  auto w = scheme_.write(*session_, "/big", common::patterned(1 << 20, 2),
                         slots_);
  ASSERT_TRUE(w.status.is_ok());
  for (const auto& p : registry_.all()) p->reset_counters();

  auto r = scheme_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_FALSE(r.degraded);
  // The parity slot (AmazonS3, last) must not be read.
  EXPECT_EQ(registry_.find("AmazonS3")->counters().gets, 0u);
  EXPECT_EQ(registry_.find("Rackspace")->counters().gets, 1u);
  EXPECT_EQ(registry_.find("Aliyun")->counters().gets, 1u);
  EXPECT_EQ(registry_.find("WindowsAzure")->counters().gets, 1u);
}

TEST_F(ErasureSchemeTest, ReadReturnsExactBytesForManySizes) {
  for (std::uint64_t size : {1ull, 3ull, 100ull, 4096ull, 1048577ull}) {
    const auto data = common::patterned(size, size);
    auto w = scheme_.write(*session_, "/f" + std::to_string(size), data,
                           slots_);
    ASSERT_TRUE(w.status.is_ok());
    auto r = scheme_.read(*session_, w.meta);
    ASSERT_TRUE(r.status.is_ok()) << size;
    EXPECT_EQ(r.data, data) << size;
  }
}

TEST_F(ErasureSchemeTest, DegradedReadReconstructsFromSurvivors) {
  const auto data = common::patterned(2 << 20, 3);
  auto w = scheme_.write(*session_, "/big", data, slots_);
  ASSERT_TRUE(w.status.is_ok());

  // Take down each data-slot provider in turn; reads must still succeed.
  for (const auto& name : {"Rackspace", "Aliyun", "WindowsAzure"}) {
    registry_.find(name)->set_online(false);
    auto r = scheme_.read(*session_, w.meta);
    ASSERT_TRUE(r.status.is_ok()) << name;
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.data, data);
    registry_.find(name)->set_online(true);
  }
}

TEST_F(ErasureSchemeTest, DegradedReadFetchesParity) {
  auto w = scheme_.write(*session_, "/big", common::patterned(1 << 20, 4),
                         slots_);
  registry_.find("Aliyun")->set_online(false);
  for (const auto& p : registry_.all()) p->reset_counters();

  auto r = scheme_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  // Parity (AmazonS3) must now be fetched — the recovery-traffic cost the
  // paper attributes to erasure coding during outages.
  EXPECT_EQ(registry_.find("AmazonS3")->counters().gets, 1u);
}

TEST_F(ErasureSchemeTest, TwoProvidersDownIsDataLoss) {
  auto w = scheme_.write(*session_, "/big", common::patterned(1 << 20, 5),
                         slots_);
  registry_.find("Aliyun")->set_online(false);
  registry_.find("Rackspace")->set_online(false);
  auto r = scheme_.read(*session_, w.meta);
  EXPECT_EQ(r.status.code(), common::StatusCode::kDataLoss);
}

TEST_F(ErasureSchemeTest, SmallUpdateUsesRmwWith2R2W) {
  const auto data = common::patterned(3 << 20, 6);
  auto w = scheme_.write(*session_, "/big", data, slots_);
  ASSERT_TRUE(w.status.is_ok());
  for (const auto& p : registry_.all()) p->reset_counters();

  // Update 4 KB inside the first fragment.
  const auto patch = common::patterned(4096, 7);
  bool rmw = false;
  auto u = scheme_.update_range(*session_, w.meta, 100, patch, &rmw);
  ASSERT_TRUE(u.status.is_ok());
  EXPECT_TRUE(rmw);

  // Paper §II-B: a RAID5 small update = 2 reads + 2 writes total.
  std::uint64_t gets = 0, puts = 0;
  for (const auto& p : registry_.all()) {
    gets += p->counters().gets;
    puts += p->counters().puts;
  }
  EXPECT_EQ(gets, 2u);
  EXPECT_EQ(puts, 2u);

  // And the data must reflect the patch.
  auto r = scheme_.read(*session_, u.meta);
  ASSERT_TRUE(r.status.is_ok());
  common::Bytes expected = data;
  std::copy(patch.begin(), patch.end(), expected.begin() + 100);
  EXPECT_EQ(r.data, expected);
}

TEST_F(ErasureSchemeTest, CrossFragmentUpdateFallsBackToRestripe) {
  const auto data = common::patterned(3000, 8);
  auto w = scheme_.write(*session_, "/f", data, slots_);
  ASSERT_TRUE(w.status.is_ok());
  // shard_size = 1000; patch spans fragments 0 and 1.
  const auto patch = common::patterned(200, 9);
  bool rmw = true;
  auto u = scheme_.update_range(*session_, w.meta, 900, patch, &rmw);
  ASSERT_TRUE(u.status.is_ok());
  EXPECT_FALSE(rmw);
  auto r = scheme_.read(*session_, u.meta);
  ASSERT_TRUE(r.status.is_ok());
  common::Bytes expected = data;
  std::copy(patch.begin(), patch.end(), expected.begin() + 900);
  EXPECT_EQ(r.data, expected);
}

TEST_F(ErasureSchemeTest, UpdateBeyondEofRejected) {
  auto w = scheme_.write(*session_, "/f", common::patterned(1000, 10), slots_);
  auto u = scheme_.update_range(*session_, w.meta, 990,
                                common::patterned(100, 11));
  EXPECT_EQ(u.status.code(), common::StatusCode::kInvalidArgument);
}

TEST_F(ErasureSchemeTest, UpdateDuringOutageStillLandsViaDegradedPath) {
  const auto data = common::patterned(3 << 20, 12);
  auto w = scheme_.write(*session_, "/big", data, slots_);
  ASSERT_TRUE(w.status.is_ok());
  registry_.find("Rackspace")->set_online(false);  // holds fragment 0

  const auto patch = common::patterned(4096, 13);
  bool rmw = true;
  std::vector<std::string> unreachable;
  auto u = scheme_.update_range(*session_, w.meta, 10, patch, &rmw,
                                &unreachable);
  ASSERT_TRUE(u.status.is_ok());
  EXPECT_FALSE(rmw);  // had to fall back
  EXPECT_FALSE(unreachable.empty());

  registry_.find("Rackspace")->set_online(true);
  // Fragment on Rackspace is stale, but a degraded read from the other
  // three still reconstructs the updated object (CRC now set by restripe).
  registry_.find("Rackspace")->set_online(false);
  auto r = scheme_.read(*session_, u.meta);
  ASSERT_TRUE(r.status.is_ok());
  common::Bytes expected = data;
  std::copy(patch.begin(), patch.end(), expected.begin() + 10);
  EXPECT_EQ(r.data, expected);
}

TEST_F(ErasureSchemeTest, RemoveDeletesAllFragments) {
  auto w = scheme_.write(*session_, "/f", common::patterned(100, 14), slots_);
  auto rm = scheme_.remove(*session_, w.meta);
  EXPECT_TRUE(rm.status.is_ok());
  for (const auto& p : registry_.all()) {
    EXPECT_EQ(p->object_count(), 0u) << p->name();
  }
}

TEST_F(ErasureSchemeTest, RebuildFragmentsForProvider) {
  const auto data = common::patterned(2 << 20, 15);
  auto w = scheme_.write(*session_, "/big", data, slots_);
  ASSERT_TRUE(w.status.is_ok());

  // Destroy Aliyun's fragment, then rebuild it from survivors.
  auto* ali = registry_.find("Aliyun");
  const std::string frag_name = w.meta.locations[1].object_name;
  auto original = ali->raw_store().get("data", frag_name);
  ASSERT_TRUE(original.is_ok());
  ali->raw_store().remove("data", frag_name);

  common::SimDuration latency = 0;
  auto rebuilt = scheme_.rebuild_fragments_for(*session_, w.meta, "Aliyun",
                                               &latency);
  ASSERT_TRUE(rebuilt.is_ok());
  ASSERT_EQ(rebuilt.value().size(), 1u);
  EXPECT_EQ(rebuilt.value()[0].first, frag_name);
  EXPECT_EQ(rebuilt.value()[0].second, original.value());
  EXPECT_GT(latency, 0);
}

TEST_F(ErasureSchemeTest, LargeReadLatencyBeatsSingleFullTransfer) {
  // The parallelism advantage (paper §II-B): striping a large file across
  // providers beats a full-size transfer from the slowest replica pair.
  const auto data = common::patterned(8 << 20, 16);
  auto w = scheme_.write(*session_, "/big", data, slots_);
  ASSERT_TRUE(w.status.is_ok());
  auto striped = scheme_.read(*session_, w.meta);
  ASSERT_TRUE(striped.status.is_ok());

  // Full-size GET from Rackspace (what a replica read would cost there).
  auto& rack = *registry_.find("Rackspace");
  rack.create("whole");
  rack.put({"whole", "o"}, data);
  auto whole = rack.get({"whole", "o"});
  ASSERT_TRUE(whole.ok());
  EXPECT_LT(striped.latency, whole.latency);
}

}  // namespace
}  // namespace hyrd::dist
