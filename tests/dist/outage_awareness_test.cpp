// The outage-awareness ablation (DESIGN.md §5): an outage-aware erasure
// client (HyRD, whose evaluator tracks availability) resolves a degraded
// read in one parallel round; a tracker-less client (RACS) probes the
// data fragments first and pays a second round for parity.
#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "dist/erasure_scheme.h"

namespace hyrd::dist {
namespace {

class OutageAwarenessTest : public ::testing::Test {
 protected:
  OutageAwarenessTest()
      : aware_("data", {.k = 3, .m = 1}, /*outage_aware=*/true),
        naive_("data", {.k = 3, .m = 1}, /*outage_aware=*/false) {
    cloud::install_standard_four(registry_, 197);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
    session_->ensure_container_everywhere("data");
    slots_ = {session_->index_of("Rackspace"), session_->index_of("Aliyun"),
              session_->index_of("WindowsAzure"),
              session_->index_of("AmazonS3")};
  }

  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
  ErasureScheme aware_;
  ErasureScheme naive_;
  std::vector<std::size_t> slots_;
};

TEST_F(OutageAwarenessTest, BothReadCorrectlyDuringOutage) {
  const auto data = common::patterned(2 << 20, 1);
  auto w = aware_.write(*session_, "/f", data, slots_);
  ASSERT_TRUE(w.status.is_ok());
  registry_.find("Aliyun")->set_online(false);

  for (ErasureScheme* scheme : {&aware_, &naive_}) {
    auto r = scheme->read(*session_, w.meta);
    ASSERT_TRUE(r.status.is_ok());
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.data, data);
  }
}

TEST_F(OutageAwarenessTest, AwareReadIsOneRound) {
  const auto data = common::patterned(2 << 20, 2);
  auto w = aware_.write(*session_, "/f", data, slots_);
  registry_.find("Aliyun")->set_online(false);

  auto aware_read = aware_.read(*session_, w.meta);
  auto naive_read = naive_.read(*session_, w.meta);
  ASSERT_TRUE(aware_read.status.is_ok());
  ASSERT_TRUE(naive_read.status.is_ok());
  // The naive client pays phase 1 (incl. the refused connection) and then
  // a full second round for parity; the aware client fetches k reachable
  // fragments at once.
  EXPECT_LT(aware_read.latency, naive_read.latency);
}

TEST_F(OutageAwarenessTest, NaiveSecondRoundFetchesParity) {
  const auto data = common::patterned(1 << 20, 3);
  auto w = naive_.write(*session_, "/f", data, slots_);
  registry_.find("Aliyun")->set_online(false);
  for (const auto& p : registry_.all()) p->reset_counters();

  auto r = naive_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  // Parity holder (AmazonS3) is touched only in round two; the failed
  // provider registered a rejected attempt in round one.
  EXPECT_EQ(registry_.find("AmazonS3")->counters().gets, 1u);
  EXPECT_EQ(registry_.find("Aliyun")->counters().rejected_unavailable, 1u);
}

TEST_F(OutageAwarenessTest, AwareSkipsOfflineProviderEntirely) {
  const auto data = common::patterned(1 << 20, 4);
  auto w = aware_.write(*session_, "/f", data, slots_);
  registry_.find("Aliyun")->set_online(false);
  for (const auto& p : registry_.all()) p->reset_counters();

  auto r = aware_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(registry_.find("Aliyun")->counters().rejected_unavailable, 0u);
}

TEST_F(OutageAwarenessTest, NoOutageIdenticalBehaviour) {
  const auto data = common::patterned(1 << 20, 5);
  auto w = aware_.write(*session_, "/f", data, slots_);
  auto a = aware_.read(*session_, w.meta);
  auto b = naive_.read(*session_, w.meta);
  ASSERT_TRUE(a.status.is_ok());
  ASSERT_TRUE(b.status.is_ok());
  EXPECT_FALSE(a.degraded);
  EXPECT_FALSE(b.degraded);
  EXPECT_EQ(a.data, b.data);
}

}  // namespace
}  // namespace hyrd::dist
