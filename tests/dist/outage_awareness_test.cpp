// The outage-awareness ablation (DESIGN.md §5): an outage-aware erasure
// client (HyRD, whose evaluator tracks availability) resolves a degraded
// read in one parallel round; a tracker-less client (RACS) probes the
// data fragments first and pays a second round for parity.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "cloud/cancel.h"
#include "cloud/profiles.h"
#include "core/hyrd_client.h"
#include "dist/erasure_scheme.h"

namespace hyrd::dist {
namespace {

class OutageAwarenessTest : public ::testing::Test {
 protected:
  OutageAwarenessTest()
      : aware_("data", {.k = 3, .m = 1}, /*outage_aware=*/true),
        naive_("data", {.k = 3, .m = 1}, /*outage_aware=*/false) {
    cloud::install_standard_four(registry_, 197);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
    session_->ensure_container_everywhere("data");
    slots_ = {session_->index_of("Rackspace"), session_->index_of("Aliyun"),
              session_->index_of("WindowsAzure"),
              session_->index_of("AmazonS3")};
  }

  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
  ErasureScheme aware_;
  ErasureScheme naive_;
  std::vector<std::size_t> slots_;
};

TEST_F(OutageAwarenessTest, BothReadCorrectlyDuringOutage) {
  const auto data = common::patterned(2 << 20, 1);
  auto w = aware_.write(*session_, "/f", data, slots_);
  ASSERT_TRUE(w.status.is_ok());
  registry_.find("Aliyun")->set_online(false);

  for (ErasureScheme* scheme : {&aware_, &naive_}) {
    auto r = scheme->read(*session_, w.meta);
    ASSERT_TRUE(r.status.is_ok());
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.data, data);
  }
}

TEST_F(OutageAwarenessTest, AwareReadIsOneRound) {
  const auto data = common::patterned(2 << 20, 2);
  auto w = aware_.write(*session_, "/f", data, slots_);
  registry_.find("Aliyun")->set_online(false);

  auto aware_read = aware_.read(*session_, w.meta);
  auto naive_read = naive_.read(*session_, w.meta);
  ASSERT_TRUE(aware_read.status.is_ok());
  ASSERT_TRUE(naive_read.status.is_ok());
  // The naive client pays phase 1 (incl. the refused connection) and then
  // a full second round for parity; the aware client fetches k reachable
  // fragments at once.
  EXPECT_LT(aware_read.latency, naive_read.latency);
}

TEST_F(OutageAwarenessTest, NaiveSecondRoundFetchesParity) {
  const auto data = common::patterned(1 << 20, 3);
  auto w = naive_.write(*session_, "/f", data, slots_);
  registry_.find("Aliyun")->set_online(false);
  for (const auto& p : registry_.all()) p->reset_counters();

  auto r = naive_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  // Parity holder (AmazonS3) is touched only in round two; the failed
  // provider registered a rejected attempt in round one.
  EXPECT_EQ(registry_.find("AmazonS3")->counters().gets, 1u);
  EXPECT_EQ(registry_.find("Aliyun")->counters().rejected_unavailable, 1u);
}

TEST_F(OutageAwarenessTest, AwareSkipsOfflineProviderEntirely) {
  const auto data = common::patterned(1 << 20, 4);
  auto w = aware_.write(*session_, "/f", data, slots_);
  registry_.find("Aliyun")->set_online(false);
  for (const auto& p : registry_.all()) p->reset_counters();

  auto r = aware_.read(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(registry_.find("Aliyun")->counters().rejected_unavailable, 0u);
}

TEST_F(OutageAwarenessTest, NoOutageIdenticalBehaviour) {
  const auto data = common::patterned(1 << 20, 5);
  auto w = aware_.write(*session_, "/f", data, slots_);
  auto a = aware_.read(*session_, w.meta);
  auto b = naive_.read(*session_, w.meta);
  ASSERT_TRUE(a.status.is_ok());
  ASSERT_TRUE(b.status.is_ok());
  EXPECT_FALSE(a.degraded);
  EXPECT_FALSE(b.degraded);
  EXPECT_EQ(a.data, b.data);
}

// --- Early-ack remove plumbing (regression tests) ---
//
// A remove that acks at the first confirmed deletion leaves the rest of
// the fragment set completing — or torn down — in the background. Every
// remove that was not positively confirmed (offline target, straggler
// cancelled after the early ack) MUST surface in unreachable_providers,
// or the client never logs it and the fragment survives resync forever.

TEST_F(OutageAwarenessTest, EarlyAckRemoveRecordsOfflineProvider) {
  const auto data = common::patterned(2 << 20, 6);
  aware_.set_write_ack(gcs::AckPolicy::kFirstSuccess);
  auto w = aware_.write(*session_, "/f", data, slots_);
  ASSERT_TRUE(w.status.is_ok());
  registry_.find("Aliyun")->set_online(false);

  auto r = aware_.remove(*session_, w.meta);
  ASSERT_TRUE(r.status.is_ok());
  const auto unreachable = [&](const std::string& p) {
    return std::find(r.unreachable_providers.begin(),
                     r.unreachable_providers.end(),
                     p) != r.unreachable_providers.end();
  };
  EXPECT_TRUE(unreachable("Aliyun"));
  // Every fragment is either gone or in the replay set — the offline
  // target always, plus any straggler the early ack tore down before it
  // resolved (real-clock scheduling decides if there are any). Nothing
  // may fall through the crack of being neither removed nor recorded.
  EXPECT_EQ(registry_.find("Aliyun")->object_count(), 1u);
  for (const char* p : {"Rackspace", "WindowsAzure", "AmazonS3"}) {
    if (!unreachable(p)) {
      EXPECT_EQ(registry_.find(p)->object_count(), 0u) << p;
    } else {
      EXPECT_EQ(registry_.find(p)->object_count(), 1u) << p;
    }
  }
}

TEST_F(OutageAwarenessTest, EarlyAckRemoveRecordsCancelledStraggler) {
  // One provider accepts the remove and then wedges. The early ack fires
  // on the first confirmed deletion, the straggler is torn down — and the
  // undelivered remove must be reported so the update log replays it.
  const auto data = common::patterned(2 << 20, 7);
  aware_.set_write_ack(gcs::AckPolicy::kFirstSuccess);
  auto w = aware_.write(*session_, "/f", data, slots_);
  ASSERT_TRUE(w.status.is_ok());

  auto* wedged = registry_.find("WindowsAzure");
  wedged->set_op_hook([](cloud::OpKind op, const cloud::ObjectKey&) {
    if (op != cloud::OpKind::kRemove) return;
    while (!cloud::CancelScope::cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  auto r = aware_.remove(*session_, w.meta);
  wedged->set_op_hook(nullptr);

  ASSERT_TRUE(r.status.is_ok());
  // The wedged provider is always in the replay set; other stragglers may
  // join it depending on real-clock scheduling (a remove that had not yet
  // resolved when the ack fired is torn down too, and must equally be
  // recorded).
  EXPECT_TRUE(std::find(r.unreachable_providers.begin(),
                        r.unreachable_providers.end(),
                        "WindowsAzure") != r.unreachable_providers.end());
  // The wedged remove never committed: the fragment is still there, which
  // is exactly why it must be in the replay set. The provider counts one
  // mid-flight cancellation — or none, if the teardown won the race and
  // the request never dispatched at all.
  EXPECT_EQ(wedged->object_count(), 1u);
  EXPECT_EQ(wedged->counters().removes, 0u);
  EXPECT_LE(wedged->counters().cancelled, 1u);
}

TEST_F(OutageAwarenessTest, EarlyAckRemoveReplaysThroughUpdateLog) {
  // End to end: a HyRD client on first-success acks removes a file while
  // one replica holder is down; the missed remove must flow through the
  // update log and be replayed when the provider comes back.
  core::HyRDConfig config;
  config.write_ack = gcs::AckPolicy::kFirstSuccess;
  core::HyRDClient client(*session_, config);

  const auto data = common::patterned(64 * 1024, 8);  // small => replicated
  auto w = client.put("/dir/f", data);
  ASSERT_TRUE(w.status.is_ok());
  ASSERT_EQ(w.meta.locations.size(), 2u);

  const std::string down = w.meta.locations[0].provider;
  const std::string object = w.meta.locations[0].object_name;
  auto* provider = registry_.find(down);
  provider->set_online(false);

  auto r = client.remove("/dir/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_TRUE(std::find(r.unreachable_providers.begin(),
                        r.unreachable_providers.end(),
                        down) != r.unreachable_providers.end());
  // The fragment survived on the offline provider...
  EXPECT_TRUE(provider->raw_store().get("hyrd-data", object).is_ok());

  // ...until the outage ends and the update log is replayed.
  provider->set_online(true);
  client.on_provider_restored(down);
  EXPECT_FALSE(provider->raw_store().get("hyrd-data", object).is_ok());
}

}  // namespace
}  // namespace hyrd::dist
