// Tail-latency behaviour of the completion-ordered engine at the scheme
// layer: first-k erasure reads under a provider brownout, hedged replica
// reads against browned-out and really-wedged primaries, and the
// accounting invariants of cancelled stragglers. (Satellite of the
// async-engine PR; the engine-level order-statistic contracts live in
// tests/gcsapi/async_batch_test.cpp.)
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "cloud/cancel.h"
#include "cloud/profiles.h"
#include "dist/erasure_scheme.h"
#include "dist/replication.h"

namespace hyrd::dist {
namespace {

/// Two independent fleets from the same seed: every provider draws the
/// same latency stream, so a strategy knob is the only difference between
/// the "baseline" and "aggressive" observations.
struct TwinFleets {
  cloud::CloudRegistry reg_a;
  cloud::CloudRegistry reg_b;
  std::unique_ptr<gcs::MultiCloudSession> sess_a;
  std::unique_ptr<gcs::MultiCloudSession> sess_b;

  explicit TwinFleets(std::uint64_t seed) {
    cloud::install_standard_four(reg_a, seed);
    cloud::install_standard_four(reg_b, seed);
    sess_a = std::make_unique<gcs::MultiCloudSession>(reg_a);
    sess_b = std::make_unique<gcs::MultiCloudSession>(reg_b);
    sess_a->ensure_container_everywhere("data");
    sess_b->ensure_container_everywhere("data");
  }
};

TEST(TailLatency, FastestKErasureReadCutsBrownoutTail) {
  // One provider holding a preferred data fragment browns out (reachable,
  // 25x slower). The legacy kPreferredK read waits for it; kFastestK
  // completes at the 3rd fastest of all four fragments and strictly beats
  // the max aggregation, returning byte-identical data.
  TwinFleets twins(501);
  const auto data = common::patterned(256 * 1024, 9);
  ErasureScheme preferred("data", {.k = 3, .m = 1});
  ErasureScheme fastest("data", {.k = 3, .m = 1});
  fastest.set_read_strategy(ErasureReadStrategy::kFastestK);

  auto wa = preferred.write(*twins.sess_a, "/f", data, {0, 1, 2, 3});
  auto wb = fastest.write(*twins.sess_b, "/f", data, {0, 1, 2, 3});
  ASSERT_TRUE(wa.status.is_ok());
  ASSERT_TRUE(wb.status.is_ok());

  // Slot 0 is a data fragment both strategies want.
  const std::string victim = twins.sess_a->client(0).provider_name();
  twins.reg_a.find(victim)->set_latency_scale(25.0);
  twins.reg_b.find(victim)->set_latency_scale(25.0);

  auto ra = preferred.read(*twins.sess_a, wa.meta);
  auto rb = fastest.read(*twins.sess_b, wb.meta);
  ASSERT_TRUE(ra.status.is_ok());
  ASSERT_TRUE(rb.status.is_ok());
  EXPECT_EQ(ra.data, data);
  EXPECT_EQ(rb.data, data);

  // The brownout is a tail event, not an outage: nobody is degraded, but
  // only the first-k read dodges the slow fragment.
  EXPECT_FALSE(ra.degraded);
  EXPECT_FALSE(rb.degraded);
  EXPECT_LT(rb.latency, ra.latency);
  EXPECT_GT(rb.saved, 0);
}

TEST(TailLatency, FastestKMatchesPreferredKOnHealthyFleet) {
  // Without a tail event the two strategies must agree on bytes, and
  // first-k may only ever shave latency, never add it.
  TwinFleets twins(503);
  const auto data = common::patterned(96 * 1024, 4);
  ErasureScheme preferred("data", {.k = 3, .m = 1});
  ErasureScheme fastest("data", {.k = 3, .m = 1});
  fastest.set_read_strategy(ErasureReadStrategy::kFastestK);

  auto wa = preferred.write(*twins.sess_a, "/f", data, {0, 1, 2, 3});
  auto wb = fastest.write(*twins.sess_b, "/f", data, {0, 1, 2, 3});
  ASSERT_TRUE(wa.status.is_ok());
  ASSERT_TRUE(wb.status.is_ok());

  auto ra = preferred.read(*twins.sess_a, wa.meta);
  auto rb = fastest.read(*twins.sess_b, wb.meta);
  ASSERT_TRUE(ra.status.is_ok());
  ASSERT_TRUE(rb.status.is_ok());
  EXPECT_EQ(ra.data, data);
  EXPECT_EQ(rb.data, data);
  EXPECT_LE(rb.latency, ra.latency);
}

class HedgedReadTest : public ::testing::Test {
 protected:
  /// Replica pair with a deterministic primary: whichever of the two has
  /// the lower advertised GET latency is the one the read tries first.
  static constexpr std::uint64_t kSize = 64 * 1024;

  std::size_t primary_of(gcs::MultiCloudSession& session,
                         std::size_t a, std::size_t b) {
    const auto expected = [&](std::size_t i) {
      return session.client(i).provider()->latency_model().expected(
          cloud::OpKind::kGet, kSize);
    };
    return expected(a) <= expected(b) ? a : b;
  }
};

TEST_F(HedgedReadTest, HedgeBeatsBrownedOutPrimary) {
  // The primary browns out (25x slower but still answering). With hedging
  // off the read pays the full browned-out response; with the default
  // policy a backup read fires at 3x the primary's expected latency and
  // wins. Same seed on both fleets: the brownout is the only variable.
  TwinFleets twins(521);
  const auto data = common::patterned(kSize, 11);
  ReplicationScheme unhedged("data");
  ReplicationScheme hedged("data");
  unhedged.set_hedge({.enabled = false});

  auto wa = unhedged.write(*twins.sess_a, "/f", data, {0, 1});
  auto wb = hedged.write(*twins.sess_b, "/f", data, {0, 1});
  ASSERT_TRUE(wa.status.is_ok());
  ASSERT_TRUE(wb.status.is_ok());

  const std::size_t primary = primary_of(*twins.sess_a, 0, 1);
  const std::string victim = twins.sess_a->client(primary).provider_name();
  twins.reg_a.find(victim)->set_latency_scale(25.0);
  twins.reg_b.find(victim)->set_latency_scale(25.0);

  auto ra = unhedged.read(*twins.sess_a, wa.meta);
  auto rb = hedged.read(*twins.sess_b, wb.meta);
  ASSERT_TRUE(ra.status.is_ok());
  ASSERT_TRUE(rb.status.is_ok());
  EXPECT_EQ(ra.data, data);
  EXPECT_EQ(rb.data, data);
  EXPECT_LT(rb.latency, ra.latency);
  EXPECT_GT(rb.saved, 0);
  // A hedge win is a performance event, not an availability event.
  EXPECT_FALSE(rb.degraded);
}

TEST_F(HedgedReadTest, HedgeFiresOnRealWedgeAndCancelsPrimary) {
  // The primary accepts the request and then never answers — invisible to
  // virtual accounting. The real-clock stall probe fires the hedge, the
  // backup serves the read, and the wedged request is torn down without
  // perturbing the primary's served-op counters or billing.
  cloud::CloudRegistry reg;
  cloud::install_standard_four(reg, 541);
  gcs::MultiCloudSession session(reg);
  session.ensure_container_everywhere("data");

  ReplicationScheme scheme("data");
  scheme.set_hedge({.enabled = true, .delay_factor = 3.0,
                    .real_stall_timeout_ms = 25});
  const auto data = common::patterned(kSize, 13);
  auto w = scheme.write(session, "/f", data, {0, 1});
  ASSERT_TRUE(w.status.is_ok());

  const std::size_t primary = primary_of(session, 0, 1);
  auto* wedged = session.client(primary).provider();
  wedged->reset_counters();
  const double billed_before = wedged->billing().open_month_transfer_cost();
  wedged->set_op_hook([](cloud::OpKind, const cloud::ObjectKey&) {
    while (!cloud::CancelScope::cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  auto r = scheme.read(session, w.meta);
  wedged->set_op_hook(nullptr);

  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
  EXPECT_GT(r.latency, 0);
  EXPECT_EQ(r.cancelled_stragglers, 1u);
  // A wedge-and-hedge is not a failover: the primary never *failed*.
  EXPECT_FALSE(r.degraded);

  const auto counters = wedged->counters();
  EXPECT_EQ(counters.cancelled, 1u);
  EXPECT_EQ(counters.gets, 0u);
  EXPECT_EQ(counters.bytes_read, 0u);
  EXPECT_EQ(wedged->billing().open_month_transfer_cost(), billed_before);
}

TEST_F(HedgedReadTest, RepeatedWedgesLeaveCleanState) {
  // Stragglers must not accumulate anywhere: every read tears its own
  // wedged request down, so N hedged reads leave exactly N cancellations
  // and the session pool fully drained (this test also runs under
  // HYRD_SANITIZE=thread in CI, where a leaked task or a data race on the
  // stats would be fatal).
  cloud::CloudRegistry reg;
  cloud::install_standard_four(reg, 547);
  gcs::MultiCloudSession session(reg);
  session.ensure_container_everywhere("data");

  ReplicationScheme scheme("data");
  scheme.set_hedge({.enabled = true, .delay_factor = 3.0,
                    .real_stall_timeout_ms = 10});
  const auto data = common::patterned(8 * 1024, 17);
  auto w = scheme.write(session, "/f", data, {0, 1});
  ASSERT_TRUE(w.status.is_ok());

  const std::size_t primary = primary_of(session, 0, 1);
  auto* wedged = session.client(primary).provider();
  wedged->reset_counters();
  wedged->set_op_hook([](cloud::OpKind, const cloud::ObjectKey&) {
    while (!cloud::CancelScope::cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kReads = 3;
  for (int i = 0; i < kReads; ++i) {
    auto r = scheme.read(session, w.meta);
    ASSERT_TRUE(r.status.is_ok());
    EXPECT_EQ(r.data, data);
    EXPECT_EQ(r.cancelled_stragglers, 1u);
  }
  wedged->set_op_hook(nullptr);
  EXPECT_EQ(wedged->counters().cancelled, static_cast<std::uint64_t>(kReads));
  EXPECT_EQ(wedged->counters().gets, 0u);
}

}  // namespace
}  // namespace hyrd::dist
