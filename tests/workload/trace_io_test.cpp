#include "workload/trace_io.h"

#include <gtest/gtest.h>

namespace hyrd::workload {
namespace {

TEST(TraceIo, RoundTrip) {
  const auto trace = synthesize_ia_trace();
  const std::string csv = trace_to_csv(trace);
  auto back = trace_from_csv(csv);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  ASSERT_EQ(back.value().size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back.value()[i].month, trace[i].month);
    EXPECT_EQ(back.value()[i].bytes_written, trace[i].bytes_written);
    EXPECT_EQ(back.value()[i].bytes_read, trace[i].bytes_read);
    EXPECT_EQ(back.value()[i].write_requests, trace[i].write_requests);
    EXPECT_EQ(back.value()[i].read_requests, trace[i].read_requests);
  }
}

TEST(TraceIo, AcceptsCrLfAndTrailingNewlines) {
  const std::string csv =
      "month,bytes_written,bytes_read,write_requests,read_requests\r\n"
      "0,100,200,3,7\r\n\n";
  auto trace = trace_from_csv(csv);
  ASSERT_TRUE(trace.is_ok());
  ASSERT_EQ(trace.value().size(), 1u);
  EXPECT_EQ(trace.value()[0].bytes_read, 200u);
}

TEST(TraceIo, RejectsBadHeader) {
  EXPECT_FALSE(trace_from_csv("a,b,c\n1,2,3\n").is_ok());
}

TEST(TraceIo, RejectsWrongFieldCount) {
  const std::string header =
      "month,bytes_written,bytes_read,write_requests,read_requests\n";
  EXPECT_FALSE(trace_from_csv(header + "0,1,2,3\n").is_ok());
  EXPECT_FALSE(trace_from_csv(header + "0,1,2,3,4,5\n").is_ok());
}

TEST(TraceIo, RejectsNonNumeric) {
  const std::string header =
      "month,bytes_written,bytes_read,write_requests,read_requests\n";
  EXPECT_FALSE(trace_from_csv(header + "0,abc,2,3,4\n").is_ok());
  EXPECT_FALSE(trace_from_csv(header + "0,1.5,2,3,4\n").is_ok());
  EXPECT_FALSE(trace_from_csv(header + "0, 1,2,3,4\n").is_ok());
}

TEST(TraceIo, RejectsEmptyAndHeaderOnly) {
  EXPECT_FALSE(trace_from_csv("").is_ok());
  EXPECT_FALSE(
      trace_from_csv(
          "month,bytes_written,bytes_read,write_requests,read_requests\n")
          .is_ok());
}

TEST(TraceIo, ImportedTraceDrivesTotals) {
  const std::string header =
      "month,bytes_written,bytes_read,write_requests,read_requests\n";
  auto trace = trace_from_csv(header + "0,1000,2100,10,35\n1,1000,2100,10,35\n");
  ASSERT_TRUE(trace.is_ok());
  const auto totals = trace_totals(trace.value());
  EXPECT_NEAR(totals.byte_ratio(), 2.1, 1e-9);
  EXPECT_NEAR(totals.request_ratio(), 3.5, 1e-9);
}

}  // namespace
}  // namespace hyrd::workload
