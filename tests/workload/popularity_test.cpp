#include "workload/popularity.h"

#include <gtest/gtest.h>

namespace hyrd::workload {
namespace {

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf(50, 1.0);
  double total = 0.0;
  for (std::size_t i = 0; i < 50; ++i) total += zipf.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSampler, PmfMonotonicallyDecreasing) {
  ZipfSampler zipf(20, 1.2);
  for (std::size_t i = 1; i < 20; ++i) {
    EXPECT_LT(zipf.pmf(i), zipf.pmf(i - 1)) << i;
  }
}

TEST(ZipfSampler, ZeroSkewIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(zipf.pmf(i), 0.1, 1e-12);
  }
}

TEST(ZipfSampler, SampleFrequenciesMatchPmf) {
  ZipfSampler zipf(8, 1.0);
  common::Xoshiro256 rng(31);
  std::vector<int> counts(8, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kN, zipf.pmf(i), 0.01) << i;
  }
}

TEST(ZipfSampler, HeadDominatesAtHighSkew) {
  ZipfSampler zipf(100, 1.5);
  common::Xoshiro256 rng(37);
  int head = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (zipf.sample(rng) < 5) ++head;
  }
  EXPECT_GT(head, kN / 2);  // top 5 of 100 take the majority of accesses
}

TEST(ZipfSampler, SamplesWithinRange) {
  ZipfSampler zipf(3, 2.0);
  common::Xoshiro256 rng(41);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 3u);
}

TEST(ZipfSampler, SingleElement) {
  ZipfSampler zipf(1, 1.0);
  common::Xoshiro256 rng(43);
  EXPECT_EQ(zipf.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.pmf(0), 1.0);
}

TEST(ZipfSampler, DeterministicForSeed) {
  ZipfSampler zipf(16, 0.9);
  common::Xoshiro256 a(47), b(47);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(zipf.sample(a), zipf.sample(b));
}

}  // namespace
}  // namespace hyrd::workload
