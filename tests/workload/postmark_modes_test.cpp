#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "core/single_client.h"
#include "workload/postmark.h"

namespace hyrd::workload {
namespace {

struct Fleet {
  Fleet() {
    cloud::install_standard_four(registry, 179);
    session = std::make_unique<gcs::MultiCloudSession>(registry);
  }
  cloud::CloudRegistry registry;
  std::unique_ptr<gcs::MultiCloudSession> session;
};

PostMarkConfig base_config() {
  PostMarkConfig c;
  c.initial_files = 40;
  c.transactions = 0;
  c.min_size = 1024;
  c.max_size = 8 << 20;
  return c;
}

std::vector<std::uint64_t> created_sizes(const PostMarkConfig& config) {
  Fleet fleet;
  core::SingleCloudClient client(*fleet.session, "Aliyun");
  PostMark pm(config);
  pm.run(client);
  std::vector<std::uint64_t> sizes;
  for (const auto& path : client.list()) {
    sizes.push_back(client.stat(path)->size);
  }
  return sizes;
}

TEST(PostMarkModes, AllModesRespectBounds) {
  for (SizeMode mode :
       {SizeMode::kMixture, SizeMode::kLogUniform, SizeMode::kUniform}) {
    PostMarkConfig config = base_config();
    config.size_mode = mode;
    for (std::uint64_t size : created_sizes(config)) {
      EXPECT_GE(size, config.min_size);
      EXPECT_LE(size, config.max_size);
    }
  }
}

TEST(PostMarkModes, UniformModeSkewsLarge) {
  // Uniform-in-bytes has mean ~max/2; the mixture is dominated by small
  // files. Their medians must be far apart.
  PostMarkConfig uniform = base_config();
  uniform.size_mode = SizeMode::kUniform;
  PostMarkConfig mixture = base_config();
  mixture.size_mode = SizeMode::kMixture;

  auto med = [](std::vector<std::uint64_t> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  EXPECT_GT(med(created_sizes(uniform)), 100 * med(created_sizes(mixture)));
}

TEST(PostMarkModes, MixtureMostFilesSmall) {
  PostMarkConfig config = base_config();
  config.initial_files = 200;
  std::size_t small = 0;
  const auto sizes = created_sizes(config);
  for (auto s : sizes) small += s <= 4096 ? 1 : 0;
  EXPECT_GT(small * 2, sizes.size());  // > 50%
}

TEST(PostMarkModes, AccessSkewTargetsSmallFiles) {
  // With full skew, reads hit only the small population: mean bytes per
  // read must be tiny relative to the no-skew run.
  auto mean_read_bytes = [&](double bias) {
    Fleet fleet;
    core::SingleCloudClient client(*fleet.session, "Aliyun");
    PostMarkConfig config = base_config();
    config.initial_files = 40;
    config.transactions = 120;
    config.w_read = 1.0;
    config.w_update = 0.0;
    config.w_create = 0.0;
    config.w_delete = 0.0;
    config.small_txn_bias = bias;
    PostMark pm(config);
    auto report = pm.run(client);
    return static_cast<double>(report.bytes_read) /
           static_cast<double>(report.reads);
  };
  EXPECT_LT(mean_read_bytes(1.0), 64.0 * 1024);
  EXPECT_GT(mean_read_bytes(0.0), 256.0 * 1024);
}

TEST(PostMarkModes, SeedReproducibility) {
  PostMarkConfig config = base_config();
  config.transactions = 50;
  Fleet f1, f2;
  core::SingleCloudClient c1(*f1.session, "Aliyun");
  core::SingleCloudClient c2(*f2.session, "Aliyun");
  PostMark pm(config);
  auto a = pm.run(c1);
  auto b = pm.run(c2);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(c1.list(), c2.list());
}

TEST(PostMarkModes, DifferentSeedsDiffer) {
  PostMarkConfig a = base_config();
  PostMarkConfig b = base_config();
  b.seed = a.seed + 1;
  EXPECT_NE(created_sizes(a), created_sizes(b));
}

}  // namespace
}  // namespace hyrd::workload
