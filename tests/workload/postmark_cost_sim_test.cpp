#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "core/hyrd_client.h"
#include "core/single_client.h"
#include "workload/cost_sim.h"
#include "workload/postmark.h"

namespace hyrd::workload {
namespace {

struct Fleet {
  Fleet() {
    cloud::install_standard_four(registry, 67);
    session = std::make_unique<gcs::MultiCloudSession>(registry);
  }
  cloud::CloudRegistry registry;
  std::unique_ptr<gcs::MultiCloudSession> session;
};

PostMarkConfig small_config() {
  PostMarkConfig c;
  c.initial_files = 20;
  c.transactions = 60;
  c.max_size = 4 << 20;  // keep the test fast
  return c;
}

TEST(PostMark, RunsFullMixAgainstHyRD) {
  Fleet fleet;
  core::HyRDClient client(*fleet.session);
  PostMark pm(small_config());
  auto report = pm.run(client);

  EXPECT_EQ(report.client, "HyRD");
  EXPECT_GE(report.creates, 20u);
  EXPECT_GT(report.reads, 0u);
  EXPECT_GT(report.updates, 0u);
  EXPECT_GT(report.deletes, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GT(report.bytes_written, 0u);
  EXPECT_GT(report.bytes_read, 0u);
  EXPECT_GT(report.mean_latency_ms(), 0.0);
  EXPECT_EQ(report.all_ms.count(),
            report.reads + report.updates + report.creates + report.deletes);
}

TEST(PostMark, DeterministicOpSequenceAcrossClients) {
  // The same seed must issue identical logical ops to different schemes:
  // equal create/read/update/delete counts and byte totals written.
  Fleet f1, f2;
  core::HyRDClient hyrd(*f1.session);
  core::SingleCloudClient single(*f2.session, "Aliyun");
  PostMark pm(small_config());
  auto a = pm.run(hyrd);
  auto b = pm.run(single);
  EXPECT_EQ(a.creates, b.creates);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.deletes, b.deletes);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
}

TEST(PostMark, CleanupRemovesPool) {
  Fleet fleet;
  core::SingleCloudClient client(*fleet.session, "Aliyun");
  PostMarkConfig config = small_config();
  config.cleanup = true;
  PostMark pm(config);
  auto report = pm.run(client);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_TRUE(client.list().empty());
}

TEST(PostMark, SizesRespectBounds) {
  Fleet fleet;
  core::SingleCloudClient client(*fleet.session, "Aliyun");
  PostMarkConfig config = small_config();
  config.initial_files = 40;
  config.transactions = 0;
  PostMark pm(config);
  pm.run(client);
  for (const auto& path : client.list()) {
    const auto m = client.stat(path);
    ASSERT_TRUE(m.has_value());
    EXPECT_GE(m->size, config.min_size);
    EXPECT_LE(m->size, config.max_size);
  }
}

TEST(CostSim, ReplaysTraceAndBillsMonthly) {
  Fleet fleet;
  core::HyRDClient client(*fleet.session);

  IaTraceParams tp;
  tp.mean_monthly_write_bytes = 200e9;  // smaller trace for test speed
  const auto trace = synthesize_ia_trace(tp);

  CostSimConfig config;
  config.scale = 1.0 / 2000.0;
  CostSimulator sim(config);
  auto report = sim.replay(trace, client, fleet.registry);

  EXPECT_EQ(report.client, "HyRD");
  ASSERT_EQ(report.monthly_cost.size(), 12u);
  ASSERT_EQ(report.cumulative_cost.size(), 12u);
  EXPECT_GT(report.files_created, 0u);
  EXPECT_GT(report.total_cost(), 0.0);

  // Cumulative is nondecreasing and ends at the sum of monthly.
  double sum = 0.0;
  for (std::size_t m = 0; m < 12; ++m) {
    EXPECT_GE(report.monthly_cost[m], 0.0);
    sum += report.monthly_cost[m];
    EXPECT_NEAR(report.cumulative_cost[m], sum, 1e-6);
    if (m > 0) {
      EXPECT_GE(report.cumulative_cost[m], report.cumulative_cost[m - 1]);
    }
  }
}

TEST(CostSim, MonthlyCostGrowsWithResidentData) {
  // Fig. 4(a): later months re-bill all previously stored data, so
  // storage-dominated schemes see rising monthly bills.
  Fleet fleet;
  core::SingleCloudClient client(*fleet.session, "WindowsAzure");

  IaTraceParams tp;
  tp.mean_monthly_write_bytes = 200e9;
  tp.seasonal_amplitude = 0.0;  // isolate the accumulation effect
  tp.noise_sigma = 0.0;
  const auto trace = synthesize_ia_trace(tp);

  CostSimulator sim({.scale = 1.0 / 2000.0});
  auto report = sim.replay(trace, client, fleet.registry);
  // Azure bills storage only (free egress/txns) => strictly increasing.
  EXPECT_GT(report.monthly_cost.back(), report.monthly_cost.front() * 2);
}

TEST(CostSim, IssuedTrafficIsReadDominated) {
  Fleet fleet;
  core::SingleCloudClient client(*fleet.session, "Aliyun");
  IaTraceParams tp;
  tp.mean_monthly_write_bytes = 200e9;
  CostSimulator sim({.scale = 1.0 / 2000.0});
  auto report = sim.replay(synthesize_ia_trace(tp), client, fleet.registry);
  EXPECT_GT(report.issued.byte_ratio(), 1.2);
  EXPECT_GT(report.issued.request_ratio(), 1.5);
}

}  // namespace
}  // namespace hyrd::workload
