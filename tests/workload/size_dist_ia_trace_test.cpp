#include <gtest/gtest.h>

#include "workload/ia_trace.h"
#include "workload/size_dist.h"

namespace hyrd::workload {
namespace {

TEST(SizeDist, MoreThanHalfOfFilesAreAtMost4KB) {
  // Paper §II-B (Agrawal FAST'07): >50 % of files are <= 4 KB.
  SizeDist dist;
  common::Xoshiro256 rng(1);
  int small = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (dist.sample(rng) <= 4096) ++small;
  }
  EXPECT_GT(small, kN / 2);
}

TEST(SizeDist, LargeFilesHoldMostBytes) {
  // Paper §II-B: large (multi-MB) files are a small fraction of files but
  // ~80 % of bytes.
  SizeDist dist;
  common::Xoshiro256 rng(2);
  std::uint64_t total = 0, large_bytes = 0;
  int large_count = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t s = dist.sample(rng);
    total += s;
    if (s > (1u << 20)) {
      large_bytes += s;
      ++large_count;
    }
  }
  const double byte_share =
      static_cast<double>(large_bytes) / static_cast<double>(total);
  const double count_share = static_cast<double>(large_count) / kN;
  EXPECT_GT(byte_share, 0.60);
  EXPECT_LT(count_share, 0.25);
}

TEST(SizeDist, SamplesWithinBounds) {
  SizeDist dist;
  common::Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const auto s = dist.sample(rng);
    EXPECT_GE(s, dist.params().small_min);
    EXPECT_LE(s, dist.params().large_max);
  }
}

TEST(SizeDist, ComponentSamplersRespectRanges) {
  SizeDist dist;
  common::Xoshiro256 rng(4);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LE(dist.sample_small(rng), 4096u);
    EXPECT_GT(dist.sample_large(rng), 1u << 20);
  }
}

TEST(SizeDist, DeterministicForSeed) {
  SizeDist dist;
  common::Xoshiro256 a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(a), dist.sample(b));
}

TEST(IaTrace, TwelveMonthsByDefault) {
  const auto trace = synthesize_ia_trace();
  EXPECT_EQ(trace.size(), 12u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].month, static_cast<int>(i));
    EXPECT_GT(trace[i].bytes_written, 0u);
    EXPECT_GT(trace[i].bytes_read, 0u);
    EXPECT_GT(trace[i].write_requests, 0u);
    EXPECT_GT(trace[i].read_requests, 0u);
  }
}

TEST(IaTrace, ByteRatioMatchesPaper) {
  // Fig. 3(a): reads outweigh writes by ~2.1:1 in bytes.
  const auto totals = trace_totals(synthesize_ia_trace());
  EXPECT_NEAR(totals.byte_ratio(), 2.1, 0.35);
}

TEST(IaTrace, RequestRatioMatchesPaper) {
  // Fig. 3(b): read requests outnumber writes by ~3.5:1.
  const auto totals = trace_totals(synthesize_ia_trace());
  EXPECT_NEAR(totals.request_ratio(), 3.5, 0.6);
}

TEST(IaTrace, MonthlyVolumesInTerabyteRange) {
  const auto trace = synthesize_ia_trace();
  for (const auto& m : trace) {
    EXPECT_GT(m.bytes_written + m.bytes_read, 1.0e12);   // > 1 TB
    EXPECT_LT(m.bytes_written + m.bytes_read, 20.0e12);  // < 20 TB
  }
}

TEST(IaTrace, SeasonalVariationPresent) {
  const auto trace = synthesize_ia_trace();
  std::uint64_t lo = trace[0].bytes_written, hi = lo;
  for (const auto& m : trace) {
    lo = std::min(lo, m.bytes_written);
    hi = std::max(hi, m.bytes_written);
  }
  EXPECT_GT(static_cast<double>(hi) / static_cast<double>(lo), 1.3);
}

TEST(IaTrace, DeterministicForSeed) {
  const auto a = synthesize_ia_trace();
  const auto b = synthesize_ia_trace();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bytes_written, b[i].bytes_written);
    EXPECT_EQ(a[i].read_requests, b[i].read_requests);
  }
}

TEST(IaTrace, ParamsScaleVolumes) {
  IaTraceParams params;
  params.mean_monthly_write_bytes = 1e9;
  const auto totals = trace_totals(synthesize_ia_trace(params));
  EXPECT_LT(totals.bytes_written, 20e9);
  EXPECT_GT(totals.bytes_written, 5e9);
}

}  // namespace
}  // namespace hyrd::workload
