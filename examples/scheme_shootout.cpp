// Scheme shootout: drive the identical PostMark workload through HyRD and
// every baseline the paper compares against, and print one summary row per
// scheme — a miniature, human-readable version of Figures 4 and 6.
#include <cstdio>

#include "cloud/profiles.h"
#include "common/table.h"
#include "common/units.h"
#include "core/duracloud_client.h"
#include "core/hyrd_client.h"
#include "core/racs_client.h"
#include "core/single_client.h"
#include "workload/postmark.h"

using namespace hyrd;

int main() {
  workload::PostMarkConfig config;
  config.initial_files = 25;
  config.transactions = 100;
  config.max_size = 16u << 20;

  struct Row {
    std::string name;
    double mean_ms;
    double p95_ms;
    std::uint64_t resident;
    double transfer_cost;
  };
  std::vector<Row> rows;

  using Factory =
      std::function<std::unique_ptr<core::StorageClient>(gcs::MultiCloudSession&)>;
  const std::vector<std::pair<std::string, Factory>> schemes = {
      {"Single(Aliyun)",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::SingleCloudClient>(s, "Aliyun");
       }},
      {"DuraCloud",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::DuraCloudClient>(s);
       }},
      {"RACS",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::RACSClient>(s);
       }},
      {"HyRD",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::HyRDClient>(s);
       }},
  };

  for (const auto& [name, factory] : schemes) {
    cloud::CloudRegistry registry;
    cloud::install_standard_four(registry, 77);
    gcs::MultiCloudSession session(registry);
    auto client = factory(session);

    workload::PostMark pm(config);
    auto report = pm.run(*client);

    Row row;
    row.name = name;
    row.mean_ms = report.mean_latency_ms();
    row.p95_ms = report.all_ms.percentile(95);
    row.resident = 0;
    row.transfer_cost = 0.0;
    for (const auto& p : registry.all()) {
      row.resident += p->stored_bytes();
      row.transfer_cost += p->billing().open_month_transfer_cost();
    }
    rows.push_back(row);
    std::printf("ran %-15s (%zu ops, %llu failed)\n", name.c_str(),
                static_cast<std::size_t>(report.all_ms.count()),
                static_cast<unsigned long long>(report.failed));
  }

  std::printf("\nIdentical workload, four redundancy strategies:\n");
  common::Table t({"Scheme", "Mean ms", "p95 ms", "Fleet bytes",
                   "Transfer+txn $"});
  for (const auto& r : rows) {
    t.add_row({r.name, common::Table::num(r.mean_ms, 0),
               common::Table::num(r.p95_ms, 0),
               common::format_bytes(r.resident),
               common::Table::num(r.transfer_cost, 4)});
  }
  t.print();
  std::printf(
      "\nReading the table: the single cloud is cheap but offers no outage "
      "protection; DuraCloud doubles storage; RACS pays latency on small "
      "files and metadata; HyRD takes replication's latency on small data "
      "and erasure coding's economy on large data.\n");
  return 0;
}
