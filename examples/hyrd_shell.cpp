// hyrd_shell: an interactive (or piped) command shell over a HyRD client —
// poke at the Cloud-of-Clouds by hand: store files, kill providers, watch
// degraded reads and recovery, inspect bills.
//
//   $ ./build/examples/hyrd_shell
//   hyrd> put /docs/a 4096
//   hyrd> outage WindowsAzure
//   hyrd> get /docs/a
//   hyrd> restore WindowsAzure
//   hyrd> bill
//   hyrd> help
#include <cstdio>
#include <iostream>
#include <sstream>

#include "cloud/outage.h"
#include "cloud/profiles.h"
#include "common/table.h"
#include "common/units.h"
#include "core/hyrd_client.h"

using namespace hyrd;

namespace {

void print_help() {
  std::printf(
      "commands:\n"
      "  put <path> <bytes>       store a file of the given size\n"
      "  write <path> <text...>   store a file with literal contents\n"
      "  get <path>               read a file (shows latency + integrity)\n"
      "  cat <path>               read a file and print its contents\n"
      "  update <path> <off> <n>  overwrite n bytes at offset\n"
      "  rm <path>                delete a file\n"
      "  ls                       list logical files\n"
      "  stat <path>              show a file's metadata\n"
      "  providers                provider status + evaluation\n"
      "  outage <provider>        take a provider offline\n"
      "  restore <provider>       bring it back (runs consistency update)\n"
      "  bill                     close the billing month and print bills\n"
      "  stats                    client-side latency statistics\n"
      "  help | quit\n");
}

}  // namespace

int main() {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, /*seed=*/7);
  gcs::MultiCloudSession session(registry);
  core::HyRDClient hyrd(session);
  cloud::OutageController outages(registry);
  common::Xoshiro256 rng(7);

  std::printf("HyRD shell — four simulated clouds ready. Type 'help'.\n");

  std::string line;
  while (true) {
    std::printf("hyrd> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      print_help();
    } else if (cmd == "put") {
      std::string path;
      std::uint64_t size = 0;
      if (!(in >> path >> size)) {
        std::printf("usage: put <path> <bytes>\n");
        continue;
      }
      auto w = hyrd.put(path, common::patterned(size, rng()));
      std::printf("%s (%.0f ms, %s, %zu fragment(s))\n",
                  w.status.to_string().c_str(), common::to_ms(w.latency),
                  std::string(meta::redundancy_name(w.meta.redundancy)).c_str(),
                  w.meta.locations.size());
    } else if (cmd == "write") {
      std::string path, text;
      in >> path;
      std::getline(in, text);
      if (!text.empty() && text.front() == ' ') text.erase(0, 1);
      auto w = hyrd.put(path, common::bytes_of(text));
      std::printf("%s (%.0f ms)\n", w.status.to_string().c_str(),
                  common::to_ms(w.latency));
    } else if (cmd == "get" || cmd == "cat") {
      std::string path;
      in >> path;
      auto r = hyrd.get(path);
      if (!r.status.is_ok()) {
        std::printf("%s\n", r.status.to_string().c_str());
        continue;
      }
      std::printf("%s, %.0f ms%s\n",
                  common::format_bytes(r.data.size()).c_str(),
                  common::to_ms(r.latency),
                  r.degraded ? " [degraded: reconstructed]" : "");
      if (cmd == "cat") std::printf("%s\n", common::to_string(r.data).c_str());
    } else if (cmd == "update") {
      std::string path;
      std::uint64_t offset = 0, n = 0;
      if (!(in >> path >> offset >> n)) {
        std::printf("usage: update <path> <offset> <bytes>\n");
        continue;
      }
      auto u = hyrd.update(path, offset, common::patterned(n, rng()));
      std::printf("%s (%.0f ms)\n", u.status.to_string().c_str(),
                  common::to_ms(u.latency));
    } else if (cmd == "rm") {
      std::string path;
      in >> path;
      auto r = hyrd.remove(path);
      std::printf("%s (%.0f ms)\n", r.status.to_string().c_str(),
                  common::to_ms(r.latency));
    } else if (cmd == "ls") {
      for (const auto& path : hyrd.list()) {
        const auto m = hyrd.stat(path);
        std::printf("  %-40s %10s  %s\n", path.c_str(),
                    common::format_bytes(m->size).c_str(),
                    std::string(meta::redundancy_name(m->redundancy)).c_str());
      }
    } else if (cmd == "stat") {
      std::string path;
      in >> path;
      const auto m = hyrd.stat(path);
      if (!m.has_value()) {
        std::printf("not found\n");
        continue;
      }
      std::printf("  size %s, version %llu, %s, crc %08x\n",
                  common::format_bytes(m->size).c_str(),
                  static_cast<unsigned long long>(m->version),
                  std::string(meta::redundancy_name(m->redundancy)).c_str(),
                  m->crc);
      for (const auto& loc : m->locations) {
        std::printf("    %-13s %s\n", loc.provider.c_str(),
                    loc.object_name.c_str());
      }
    } else if (cmd == "providers") {
      common::Table t({"Provider", "State", "Read ms", "Category",
                       "Stored"});
      for (const auto& e : hyrd.evaluation().providers) {
        auto* p = registry.find(e.provider);
        t.add_row({e.provider, p->online() ? "online" : "OFFLINE",
                   common::Table::num(e.mean_read_ms, 0), e.category.str(),
                   common::format_bytes(p->stored_bytes())});
      }
      t.print();
    } else if (cmd == "outage") {
      std::string name;
      in >> name;
      std::printf(outages.take_down(name) ? "%s is now offline\n"
                                          : "unknown provider %s\n",
                  name.c_str());
    } else if (cmd == "restore") {
      std::string name;
      in >> name;
      if (!outages.restore(name)) {
        std::printf("unknown provider %s\n", name.c_str());
        continue;
      }
      const auto latency = hyrd.on_provider_restored(name);
      std::printf("%s back online; consistency update took %.0f ms\n",
                  name.c_str(), common::to_ms(latency));
    } else if (cmd == "bill") {
      common::Table t({"Provider", "Stored", "In", "Out", "Total $"});
      for (const auto& p : registry.all()) {
        const auto b = p->close_month();
        t.add_row({p->name(), common::format_bytes(b.stored_bytes),
                   common::format_bytes(b.bytes_in),
                   common::format_bytes(b.bytes_out),
                   common::Table::num(b.total(), 4)});
      }
      t.print();
    } else if (cmd == "stats") {
      const auto s = hyrd.stats_snapshot();
      std::printf("  puts %zu (mean %.0f ms)  gets %zu (mean %.0f ms)  "
                  "updates %zu  removes %zu  degraded reads %llu\n",
                  s.put_ms.count(), s.put_ms.mean(), s.get_ms.count(),
                  s.get_ms.mean(), s.update_ms.count(), s.remove_ms.count(),
                  static_cast<unsigned long long>(s.degraded_reads));
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  std::printf("\nbye.\n");
  return 0;
}
