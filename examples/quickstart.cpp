// Quickstart: the smallest complete HyRD program.
//
// Builds the paper's standard Cloud-of-Clouds (Amazon S3, Windows Azure,
// Aliyun, Rackspace — simulated), creates a HyRD client, stores a small
// and a large file, and shows where the Request Dispatcher put them and
// what each access cost in (virtual) time.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "cloud/profiles.h"
#include "common/units.h"
#include "core/hyrd_client.h"

using namespace hyrd;

int main() {
  // 1. A fleet of simulated providers with Table-II prices and
  //    Figure-5-calibrated latency models.
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, /*seed=*/42);

  // 2. The GCS-API middleware session over all providers, and HyRD on top.
  //    Construction probes every provider (the Cost & Performance
  //    Evaluator) and derives the placement orders.
  gcs::MultiCloudSession session(registry);
  core::HyRDClient hyrd(session);

  std::printf("Provider evaluation (measured by the evaluator):\n");
  for (const auto& e : hyrd.evaluation().providers) {
    std::printf("  %-13s read %6.1f ms   cost score $%.3f/GB   [%s]\n",
                e.provider.c_str(), e.mean_read_ms, e.cost_score,
                e.category.str().c_str());
  }

  // 3. A small file: replicated on the two performance-oriented clouds.
  const auto note = common::bytes_of("meeting notes, 2014-09-10");
  auto put_small = hyrd.put("/docs/notes.txt", note);
  std::printf("\nput /docs/notes.txt (%zu B) -> %s, %.0f ms, replicas on:",
              note.size(), put_small.status.to_string().c_str(),
              common::to_ms(put_small.latency));
  for (const auto& loc : put_small.meta.locations) {
    std::printf(" %s", loc.provider.c_str());
  }
  std::printf("\n");

  // 4. A large file: erasure-coded (RAID5) across cost-oriented clouds.
  const auto video = common::patterned(8 << 20, /*seed=*/7);
  auto put_large = hyrd.put("/media/lecture.mp4", video);
  std::printf("put /media/lecture.mp4 (%s) -> %s, %.0f ms, fragments on:",
              common::format_bytes(video.size()).c_str(),
              put_large.status.to_string().c_str(),
              common::to_ms(put_large.latency));
  for (const auto& loc : put_large.meta.locations) {
    std::printf(" %s", loc.provider.c_str());
  }
  std::printf("  (last = parity)\n");

  // 5. Reads: replica read for the note, parallel striped read for the
  //    video.
  auto get_small = hyrd.get("/docs/notes.txt");
  auto get_large = hyrd.get("/media/lecture.mp4");
  std::printf("\nget /docs/notes.txt   -> %.0f ms  (content: \"%s\")\n",
              common::to_ms(get_small.latency),
              common::to_string(get_small.data).c_str());
  std::printf("get /media/lecture.mp4 -> %.0f ms  (%s, intact: %s)\n",
              common::to_ms(get_large.latency),
              common::format_bytes(get_large.data.size()).c_str(),
              get_large.data == video ? "yes" : "NO");

  // 6. Availability: any single provider can vanish.
  registry.find("Aliyun")->set_online(false);
  auto degraded = hyrd.get("/media/lecture.mp4");
  std::printf(
      "\nAliyun outage -> get /media/lecture.mp4 still works: %s "
      "(degraded=%s, %.0f ms)\n",
      degraded.status.is_ok() && degraded.data == video ? "yes" : "NO",
      degraded.degraded ? "true" : "false", common::to_ms(degraded.latency));
  return 0;
}
