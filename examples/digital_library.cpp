// Digital library: the paper's motivating scenario (Library of Congress /
// Internet Archive moving digitized content to the cloud).
//
// Ingests a month of mixed library content through HyRD — catalogue
// records (small), scanned page images (medium), and digitized media
// (large) — serves a read-heavy access pattern, then prints the monthly
// bill per provider and the class breakdown the Workload Monitor saw.
#include <cstdio>

#include "cloud/profiles.h"
#include "common/table.h"
#include "common/units.h"
#include "core/hyrd_client.h"
#include "workload/size_dist.h"

using namespace hyrd;

int main() {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, /*seed=*/1851);  // IA founding-ish
  gcs::MultiCloudSession session(registry);
  core::HyRDClient hyrd(session);
  common::Xoshiro256 rng(1851);

  // --- Ingest: 120 items across the three collections. ---
  struct Collection {
    const char* dir;
    std::uint64_t lo, hi;
    int count;
  };
  const Collection collections[] = {
      {"/catalogue", 512, 4 * 1024, 60},           // MARC-like records
      {"/scans", 64 * 1024, 900 * 1024, 40},       // page images
      {"/media", 2u << 20, 24u << 20, 20},         // audio/video
  };

  std::printf("Ingesting the monthly accession batch...\n");
  std::vector<std::string> paths;
  common::SimDuration ingest_time = 0;
  std::uint64_t ingest_bytes = 0;
  for (const auto& c : collections) {
    for (int i = 0; i < c.count; ++i) {
      const std::uint64_t size = rng.uniform_int(c.lo, c.hi);
      const std::string path =
          std::string(c.dir) + "/item" + std::to_string(i);
      auto w = hyrd.put(path, common::patterned(size, rng()));
      if (!w.status.is_ok()) {
        std::printf("ingest failed: %s\n", w.status.to_string().c_str());
        return 1;
      }
      ingest_time += w.latency;
      ingest_bytes += size;
      paths.push_back(path);
    }
  }
  std::printf("  %zu items, %s in %.1f virtual minutes\n", paths.size(),
              common::format_bytes(ingest_bytes).c_str(),
              common::to_seconds(ingest_time) / 60.0);

  // --- Serve: read-heavy month, catalogue lookups dominating. ---
  std::printf("Serving reader traffic (catalogue-heavy, IA-style)...\n");
  common::SimDuration serve_time = 0;
  std::uint64_t served_bytes = 0;
  int requests = 0;
  for (int r = 0; r < 400; ++r) {
    // 70% catalogue, 20% scans, 10% media — small files take most hits.
    const double u = rng.uniform();
    const Collection& c =
        u < 0.7 ? collections[0] : (u < 0.9 ? collections[1] : collections[2]);
    const std::string path = std::string(c.dir) + "/item" +
                             std::to_string(rng.uniform_int(0, c.count - 1));
    auto read = hyrd.get(path);
    if (read.status.is_ok()) {
      serve_time += read.latency;
      served_bytes += read.data.size();
      ++requests;
    }
  }
  std::printf("  %d requests, %s served, mean %.0f ms/request\n", requests,
              common::format_bytes(served_bytes).c_str(),
              common::to_ms(serve_time) / requests);

  // --- Workload Monitor breakdown. ---
  std::printf("\nWorkload Monitor classification:\n");
  common::Table classes({"Class", "Writes", "Bytes written", "Reads",
                         "Bytes read"});
  for (auto cls : {core::DataClass::kMetadata, core::DataClass::kSmallFile,
                   core::DataClass::kLargeFile}) {
    const auto s = hyrd.monitor().stats(cls);
    classes.add_row({std::string(core::data_class_name(cls)),
                     std::to_string(s.writes),
                     common::format_bytes(s.bytes_written),
                     std::to_string(s.reads),
                     common::format_bytes(s.bytes_read)});
  }
  classes.print();

  // --- The monthly bill. ---
  std::printf("\nMonth-end bill per provider:\n");
  common::Table bill({"Provider", "Resident", "In", "Out", "Txns", "Total $"});
  double total = 0.0;
  for (const auto& p : registry.all()) {
    const auto b = p->close_month();
    bill.add_row({p->name(), common::format_bytes(b.stored_bytes),
                  common::format_bytes(b.bytes_in),
                  common::format_bytes(b.bytes_out),
                  std::to_string(b.put_class_txns + b.get_class_txns),
                  common::Table::num(b.total(), 4)});
    total += b.total();
  }
  bill.print();
  std::printf("Cloud-of-Clouds month total: %s  (at this scale; bills are "
              "linear in volume)\n",
              common::format_usd(total).c_str());

  // --- Durability check across a provider loss. ---
  registry.find("Rackspace")->set_online(false);
  int readable = 0;
  for (const auto& path : paths) {
    if (hyrd.get(path).status.is_ok()) ++readable;
  }
  std::printf(
      "\nWith Rackspace offline, %d/%zu items remain readable (the "
      "vendor-lock-in insurance the paper argues for).\n",
      readable, paths.size());
  return readable == static_cast<int>(paths.size()) ? 0 : 1;
}
