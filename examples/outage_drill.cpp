// Outage drill: walks through the paper's §III-C recovery story end to
// end, narrating each phase —
//
//   1. normal operation;
//   2. a provider outage: writes proceed (logged), reads reconstruct
//      on demand;
//   3. the provider returns: the logged consistency update replays;
//   4. full redundancy verified by failing a *different* provider.
#include <cstdio>

#include "cloud/outage.h"
#include "cloud/profiles.h"
#include "core/hyrd_client.h"

using namespace hyrd;

namespace {

void banner(const char* text) { std::printf("\n--- %s ---\n", text); }

}  // namespace

int main() {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, /*seed=*/365);
  gcs::MultiCloudSession session(registry);
  core::HyRDClient hyrd(session);
  cloud::OutageController outages(registry);

  banner("Phase 0: normal operation");
  const auto report_v1 = common::patterned(300 * 1024, 1);   // small-ish
  const auto dataset_v1 = common::patterned(12 << 20, 2);    // large
  hyrd.put("/proj/report.pdf", report_v1);
  hyrd.put("/proj/dataset.bin", dataset_v1);
  std::printf("stored /proj/report.pdf (300 KiB, replicated) and "
              "/proj/dataset.bin (12 MiB, erasure-coded)\n");

  banner("Phase 1: Windows Azure suffers an outage");
  outages.take_down("WindowsAzure");
  std::printf("offline: %s\n", outages.offline_providers()[0].c_str());

  // Writes during the outage proceed; changes for Azure are logged.
  const auto report_v2 = common::patterned(300 * 1024, 3);
  auto w = hyrd.put("/proj/report.pdf", report_v2);
  std::printf("overwrite /proj/report.pdf during outage: %s (%.0f ms)\n",
              w.status.to_string().c_str(), common::to_ms(w.latency));
  std::printf("update log holds %zu pending record(s) for Azure\n",
              hyrd.update_log().pending_for("WindowsAzure").size());

  // Reads reconstruct on demand.
  auto r1 = hyrd.get("/proj/report.pdf");
  auto r2 = hyrd.get("/proj/dataset.bin");
  std::printf("read report  -> %s, degraded=%s, fresh content: %s\n",
              r1.status.to_string().c_str(), r1.degraded ? "yes" : "no",
              r1.data == report_v2 ? "yes" : "NO");
  std::printf("read dataset -> %s, degraded=%s (reconstructed from "
              "surviving fragments + parity)\n",
              r2.status.to_string().c_str(), r2.degraded ? "yes" : "no");

  banner("Phase 2: Azure returns; consistency update replays the log");
  outages.restore("WindowsAzure");
  const auto resync_time = hyrd.on_provider_restored("WindowsAzure");
  std::printf("resync took %.0f ms of virtual time; pending records now: "
              "%zu\n",
              common::to_ms(resync_time),
              hyrd.update_log().pending_for("WindowsAzure").size());

  banner("Phase 3: verify full redundancy is back");
  // If Azure's copies were left stale this would fail: take down Aliyun
  // (the other replica holder / a data-fragment holder) and read again.
  outages.take_down("Aliyun");
  auto v1 = hyrd.get("/proj/report.pdf");
  auto v2 = hyrd.get("/proj/dataset.bin");
  const bool ok = v1.status.is_ok() && v1.data == report_v2 &&
                  v2.status.is_ok() && v2.data == dataset_v1;
  std::printf("with Aliyun now offline instead: report %s, dataset %s\n",
              v1.status.is_ok() ? "readable" : "LOST",
              v2.status.is_ok() ? "readable" : "LOST");
  std::printf("\nDrill %s: single-provider outages are survivable before, "
              "during, and after recovery.\n",
              ok ? "PASSED" : "FAILED");
  return ok ? 0 : 1;
}
